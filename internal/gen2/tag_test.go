package gen2

import (
	"math/rand"
	"testing"

	"tagwatch/internal/epc"
)

func newTag(code string) *Tag {
	return NewTag(epc.NewMemory(epc.MustParse(code)))
}

func TestSelectActionTableSL(t *testing.T) {
	mask := epc.New([]byte{0x30}) // matches tags whose EPC starts 0x30
	sel := func(a Action) SelectCmd {
		return SelectCmd{Target: TargetSL, Action: a, MemBank: epc.BankEPC, Pointer: epc.EPCWordOffset, Mask: mask}
	}
	match := func() *Tag { return newTag("30f4ab12cd0045e100000001") }
	nomatch := func() *Tag { return newTag("e0f4ab12cd0045e100000001") }

	cases := []struct {
		action              Action
		wantMatch, wantMiss bool // SL after command, starting from false
	}{
		{ActionAssertDeassert, true, false},
		{ActionAssertNothing, true, false},
		{ActionNothingDeassert, false, false},
		{ActionNegateNothing, true, false},
		{ActionDeassertAssert, false, true},
		{ActionDeassertNothing, false, false},
		{ActionNothingAssert, false, true},
		{ActionNothingNegate, false, true},
	}
	for _, c := range cases {
		m, n := match(), nomatch()
		m.ApplySelect(sel(c.action))
		n.ApplySelect(sel(c.action))
		if m.SL() != c.wantMatch {
			t.Errorf("action %d: matching tag SL = %v, want %v", c.action, m.SL(), c.wantMatch)
		}
		if n.SL() != c.wantMiss {
			t.Errorf("action %d: non-matching tag SL = %v, want %v", c.action, n.SL(), c.wantMiss)
		}
	}
}

func TestSelectNegateTogglesSL(t *testing.T) {
	tag := newTag("30f4ab12cd0045e100000001")
	cmd := SelectCmd{Target: TargetSL, Action: ActionNegateNothing, MemBank: epc.BankEPC, Pointer: epc.EPCWordOffset, Mask: epc.New([]byte{0x30})}
	tag.ApplySelect(cmd)
	if !tag.SL() {
		t.Fatal("first negate must assert")
	}
	tag.ApplySelect(cmd)
	if tag.SL() {
		t.Fatal("second negate must deassert")
	}
}

func TestSelectSessionFlagTarget(t *testing.T) {
	tag := newTag("30f4ab12cd0045e100000001")
	cmd := SelectCmd{Target: TargetS2, Action: ActionDeassertAssert, MemBank: epc.BankEPC, Pointer: epc.EPCWordOffset, Mask: epc.New([]byte{0x30})}
	tag.ApplySelect(cmd) // matching → deassert → flag B
	if tag.Inventoried(S2) != FlagB {
		t.Fatalf("S2 flag = %v, want B", tag.Inventoried(S2))
	}
	if tag.Inventoried(S0) != FlagA || tag.Inventoried(S1) != FlagA || tag.Inventoried(S3) != FlagA {
		t.Fatal("other session flags must be untouched")
	}
	// Negate on inventoried flag.
	neg := cmd
	neg.Action = ActionNegateNothing
	tag.ApplySelect(neg)
	if tag.Inventoried(S2) != FlagA {
		t.Fatal("negate must flip B back to A")
	}
}

func TestQueryParticipationSelCriteria(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	q := func(sel Sel) Query { return Query{Sel: sel, Session: S1, Target: FlagA, Q: 0} }

	slTag := newTag("30f4ab12cd0045e100000001")
	slTag.ApplySelect(SelectCmd{Target: TargetSL, Action: ActionAssertNothing, MemBank: epc.BankEPC, Pointer: epc.EPCWordOffset, Mask: epc.New([]byte{0x30})})
	plainTag := newTag("e0f4ab12cd0045e100000001")

	// Q=0 means a participating tag replies immediately.
	if slTag.HandleQuery(q(SelSL), rng) == nil {
		t.Fatal("SL tag must join an SL-only round")
	}
	if plainTag.HandleQuery(q(SelSL), rng) != nil {
		t.Fatal("non-SL tag must stay out of an SL-only round")
	}
	if plainTag.HandleQuery(q(SelNotSL), rng) == nil {
		t.Fatal("non-SL tag must join a ~SL round")
	}
	slTag.Reset()
	if slTag.HandleQuery(q(SelNotSL), rng) != nil {
		t.Fatal("SL tag must stay out of a ~SL round")
	}
	if slTag.HandleQuery(q(SelAll), rng) == nil || plainTag.HandleQuery(q(SelAll), rng) == nil {
		t.Fatal("all tags join a Sel=All round")
	}
}

func TestQueryTargetFlag(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tag := newTag("30f4ab12cd0045e100000001")
	tag.SetInventoried(S0, FlagB)
	if tag.HandleQuery(Query{Session: S0, Target: FlagA, Q: 0}, rng) != nil {
		t.Fatal("B-flagged tag must not join an A-targeted round")
	}
	if tag.HandleQuery(Query{Session: S0, Target: FlagB, Q: 0}, rng) == nil {
		t.Fatal("B-flagged tag must join a B-targeted round")
	}
}

func TestSingulationFlipsInventoriedFlag(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tag := newTag("30f4ab12cd0045e100000001")
	rep := tag.HandleQuery(Query{Session: S1, Target: FlagA, Q: 0}, rng)
	if rep == nil {
		t.Fatal("Q=0 participant must reply")
	}
	er := tag.HandleACK(ACK{RN16: rep.RN16})
	if er == nil {
		t.Fatal("matching ACK must elicit the EPC")
	}
	if er.EPC != tag.EPC() {
		t.Fatalf("EPC reply = %s, want %s", er.EPC, tag.EPC())
	}
	// CRC must protect PC+EPC.
	body := []byte{byte(er.PC >> 8), byte(er.PC)}
	body = append(body, er.EPC.Bytes()...)
	if !epc.CheckCRC16(body, er.CRC) {
		t.Fatal("EPC reply CRC invalid")
	}
	if tag.State() != StateAcknowledged {
		t.Fatalf("state = %v, want Acknowledged", tag.State())
	}
	// The next QueryRep closes out the singulation: flag flips A→B.
	if tag.HandleQueryRep(QueryRep{Session: S1}, rng) != nil {
		t.Fatal("acknowledged tag must not reply to QueryRep")
	}
	if tag.Inventoried(S1) != FlagB {
		t.Fatal("inventoried flag must flip after singulation")
	}
	if tag.State() != StateReady {
		t.Fatalf("state = %v, want Ready", tag.State())
	}
}

func TestNewQueryAlsoFlipsAcknowledged(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tag := newTag("30f4ab12cd0045e100000001")
	rep := tag.HandleQuery(Query{Session: S1, Target: FlagA, Q: 0}, rng)
	tag.HandleACK(ACK{RN16: rep.RN16})
	// A fresh Query for the same session implicitly completes the
	// singulation; the tag (now FlagB) no longer participates in an
	// A-targeted round.
	if tag.HandleQuery(Query{Session: S1, Target: FlagA, Q: 0}, rng) != nil {
		t.Fatal("flipped tag must not rejoin the A-targeted round")
	}
	if tag.Inventoried(S1) != FlagB {
		t.Fatal("flag must flip on the new Query")
	}
}

func TestWrongACKSendsTagToArbitrate(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tag := newTag("30f4ab12cd0045e100000001")
	rep := tag.HandleQuery(Query{Session: S0, Target: FlagA, Q: 0}, rng)
	if er := tag.HandleACK(ACK{RN16: rep.RN16 ^ 0xFFFF}); er != nil {
		t.Fatal("wrong RN16 must not elicit an EPC")
	}
	if tag.State() != StateArbitrate {
		t.Fatalf("state = %v, want Arbitrate", tag.State())
	}
	if tag.Inventoried(S0) != FlagA {
		t.Fatal("failed singulation must not flip the flag")
	}
}

func TestACKOutsideReplyIgnored(t *testing.T) {
	tag := newTag("30f4ab12cd0045e100000001")
	if tag.HandleACK(ACK{RN16: 7}) != nil {
		t.Fatal("Ready tag must ignore ACK")
	}
}

func TestQueryRepCountdown(t *testing.T) {
	// Force a deterministic multi-slot draw by retrying seeds until the
	// tag picks slot 3 of a Q=3 frame, then count it down.
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tag := newTag("30f4ab12cd0045e100000001")
		if tag.HandleQuery(Query{Session: S0, Target: FlagA, Q: 3}, rng) != nil {
			continue // drew slot 0
		}
		reps := 0
		for tag.State() == StateArbitrate && reps < 9 {
			reps++
			if rep := tag.HandleQueryRep(QueryRep{Session: S0}, rng); rep != nil {
				if reps > 7 {
					t.Fatalf("tag replied after %d reps in a Q=3 frame", reps)
				}
				return
			}
		}
		t.Fatalf("tag never replied within the frame (seed %d)", seed)
	}
	t.Skip("all seeds drew slot 0 — statistically impossible")
}

func TestQueryRepOtherSessionIgnored(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tag := newTag("30f4ab12cd0045e100000001")
	tag.HandleQuery(Query{Session: S2, Target: FlagA, Q: 4}, rng)
	st := tag.State()
	if tag.HandleQueryRep(QueryRep{Session: S0}, rng) != nil || tag.State() != st {
		t.Fatal("QueryRep for another session must be ignored")
	}
}

func TestCollidedTagWaitsOutTheRound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tag := newTag("30f4ab12cd0045e100000001")
	rep := tag.HandleQuery(Query{Session: S0, Target: FlagA, Q: 0}, rng)
	if rep == nil {
		t.Fatal("must reply at Q=0")
	}
	// Reader saw a collision: no ACK, just the next QueryRep.
	if tag.HandleQueryRep(QueryRep{Session: S0}, rng) != nil {
		t.Fatal("collided tag must fall back to Arbitrate silently")
	}
	if tag.State() != StateArbitrate {
		t.Fatalf("state = %v, want Arbitrate", tag.State())
	}
	if tag.Inventoried(S0) != FlagA {
		t.Fatal("collided tag must keep its flag")
	}
}

func TestQueryAdjustRedraw(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	tag := newTag("30f4ab12cd0045e100000001")
	tag.HandleQuery(Query{Session: S0, Target: FlagA, Q: 8}, rng)
	// Adjust down to Q=0: every arbitrating tag redraws in [0,1) → replies.
	rep := tag.HandleQueryAdjust(QueryAdjust{Session: S0, UpDn: -1}, 0, rng)
	if rep == nil && tag.State() != StateReply {
		t.Fatalf("after adjust to Q=0 the tag must reply (state %v)", tag.State())
	}
	// Adjust for another session is ignored.
	tag2 := newTag("30f4ab12cd0045e100000002")
	tag2.HandleQuery(Query{Session: S2, Target: FlagA, Q: 8}, rng)
	st := tag2.State()
	if tag2.HandleQueryAdjust(QueryAdjust{Session: S0, UpDn: -1}, 0, rng) != nil || tag2.State() != st {
		t.Fatal("adjust for another session must be ignored")
	}
}

func TestQueryAdjustCompletesAcknowledged(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tag := newTag("30f4ab12cd0045e100000001")
	rep := tag.HandleQuery(Query{Session: S0, Target: FlagA, Q: 0}, rng)
	tag.HandleACK(ACK{RN16: rep.RN16})
	tag.HandleQueryAdjust(QueryAdjust{Session: S0}, 2, rng)
	if tag.Inventoried(S0) != FlagB || tag.State() != StateReady {
		t.Fatal("QueryAdjust must complete a pending singulation")
	}
}

func TestNAK(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	tag := newTag("30f4ab12cd0045e100000001")
	rep := tag.HandleQuery(Query{Session: S0, Target: FlagA, Q: 0}, rng)
	tag.HandleACK(ACK{RN16: rep.RN16})
	tag.HandleNAK()
	if tag.State() != StateArbitrate {
		t.Fatalf("state after NAK = %v, want Arbitrate", tag.State())
	}
	if tag.Inventoried(S0) != FlagA {
		t.Fatal("NAK must not flip the inventoried flag")
	}
	// NAK in Ready is a no-op.
	fresh := newTag("30f4ab12cd0045e100000002")
	fresh.HandleNAK()
	if fresh.State() != StateReady {
		t.Fatal("NAK in Ready must be a no-op")
	}
}

// TestFullRoundInventoriesEveryTagOnce drives a complete DFSA round over a
// population at the state-machine level and checks the fundamental
// invariant: every tag is singulated exactly once per round.
func TestFullRoundInventoriesEveryTagOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	popRng := rand.New(rand.NewSource(12))
	codes, err := epc.RandomPopulation(popRng, 30, 96)
	if err != nil {
		t.Fatal(err)
	}
	tags := make([]*Tag, len(codes))
	for i, c := range codes {
		tags[i] = NewTag(epc.NewMemory(c))
	}
	reads := map[epc.EPC]int{}

	q := uint8(5)
	collect := func(replies map[*Tag]*Reply) {
		if len(replies) != 1 {
			return // empty or collision
		}
		for tag, rep := range replies {
			if er := tag.HandleACK(ACK{RN16: rep.RN16}); er != nil {
				reads[er.EPC]++
			}
		}
	}

	replies := map[*Tag]*Reply{}
	for _, tag := range tags {
		if r := tag.HandleQuery(Query{Session: S1, Target: FlagA, Q: q}, rng); r != nil {
			replies[tag] = r
		}
	}
	collect(replies)
	for slot := 0; slot < 4000; slot++ {
		replies = map[*Tag]*Reply{}
		for _, tag := range tags {
			if r := tag.HandleQueryRep(QueryRep{Session: S1}, rng); r != nil {
				replies[tag] = r
			}
		}
		collect(replies)
		done := true
		for _, tag := range tags {
			if tag.Inventoried(S1) != FlagB {
				done = false
				break
			}
		}
		if done {
			break
		}
		// Periodically re-query to recover collided tags (their counters
		// are exhausted), mimicking a reader starting a new frame within
		// the same round.
		if slot%64 == 63 {
			for _, tag := range tags {
				if r := tag.HandleQuery(Query{Session: S1, Target: FlagA, Q: q}, rng); r != nil {
					replies[tag] = r
				} else if tag.State() == StateReply {
					replies[tag] = &Reply{}
				}
			}
			collect(replies)
		}
	}
	for _, c := range codes {
		if reads[c] != 1 {
			t.Fatalf("tag %s read %d times, want exactly 1", c, reads[c])
		}
	}
}

func TestEnumStrings(t *testing.T) {
	if S2.String() != "S2" || FlagA.String() != "A" || FlagB.String() != "B" {
		t.Fatal("session/flag strings")
	}
	if StateReady.String() != "Ready" || StateArbitrate.String() != "Arbitrate" ||
		StateReply.String() != "Reply" || StateAcknowledged.String() != "Acknowledged" {
		t.Fatal("state strings")
	}
	if State(9).String() == "" || Target(2).String() == "" || TargetSL.String() != "SL" {
		t.Fatal("fallback strings")
	}
	if FlagA.Invert() != FlagB || FlagB.Invert() != FlagA {
		t.Fatal("Invert")
	}
}

func TestSelectCmdString(t *testing.T) {
	cmd := SelectCmd{Target: TargetSL, Action: ActionAssertDeassert, MemBank: epc.BankEPC, Pointer: 32, Mask: epc.New([]byte{0xAB})}
	if cmd.String() == "" || cmd.Length() != 8 {
		t.Fatal("SelectCmd rendering")
	}
	weird := SelectCmd{Action: Action(250)}
	if weird.String() == "" {
		t.Fatal("unknown action must still render")
	}
}

func TestSelectCommandBitsEBV(t *testing.T) {
	base := SelectCmd{Mask: epc.New([]byte{0xFF})} // 8-bit mask, pointer 0
	if got := base.CommandBits(); got != 4+3+3+2+8+8+8+1+16 {
		t.Fatalf("CommandBits = %d", got)
	}
	far := base
	far.Pointer = 200 // needs a 2-block EBV
	if far.CommandBits() != base.CommandBits()+8 {
		t.Fatal("pointer ≥128 must add one EBV block")
	}
	veryFar := base
	veryFar.Pointer = 20000 // 3 blocks
	if veryFar.CommandBits() != base.CommandBits()+16 {
		t.Fatal("pointer ≥16384 must add two EBV blocks")
	}
}
