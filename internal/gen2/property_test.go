package gen2

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tagwatch/internal/epc"
)

// TestSelectTouchesOnlyTargetProperty: a Select command may change only
// the flag its Target names; every other flag is invariant.
func TestSelectTouchesOnlyTargetProperty(t *testing.T) {
	f := func(seed int64, action, target uint8, maskByte uint8, maskLen uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		pop, err := epc.RandomPopulation(rng, 1, 96)
		if err != nil {
			return false
		}
		tag := NewTag(epc.NewMemory(pop[0]))
		// Randomise initial flags.
		for s := S0; s <= S3; s++ {
			if rng.Intn(2) == 1 {
				tag.SetInventoried(s, FlagB)
			}
		}
		beforeSL := tag.SL()
		var before [4]Flag
		for s := S0; s <= S3; s++ {
			before[s] = tag.Inventoried(s)
		}

		mask, err := epc.NewBits([]byte{maskByte}, int(maskLen%9))
		if err != nil {
			return false
		}
		cmd := SelectCmd{
			Target:  Target(target % 5),
			Action:  Action(action % 8),
			MemBank: epc.BankEPC,
			Pointer: int(seed%64) + 0,
			Mask:    mask,
		}
		tag.ApplySelect(cmd)

		for s := S0; s <= S3; s++ {
			if Target(s) != cmd.Target && tag.Inventoried(s) != before[s] {
				return false
			}
		}
		if cmd.Target != TargetSL && tag.SL() != beforeSL {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestZeroLengthMaskMatchesAll: the zero-length mask is the universal
// match the reader uses to reset session flags.
func TestZeroLengthMaskMatchesAll(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pop, err := epc.RandomPopulation(rng, 1, 96)
		if err != nil {
			return false
		}
		cmd := SelectCmd{MemBank: epc.BankEPC, Pointer: 0}
		return cmd.Matches(epc.NewMemory(pop[0]))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestParticipationMatchesSelAndFlagProperty: a tag joins a round exactly
// when its SL and inventoried flags satisfy the Query's criteria.
func TestParticipationMatchesSelAndFlagProperty(t *testing.T) {
	f := func(seed int64, sl bool, flagB bool, sel uint8, target bool) bool {
		rng := rand.New(rand.NewSource(seed))
		pop, err := epc.RandomPopulation(rng, 1, 96)
		if err != nil {
			return false
		}
		tag := NewTag(epc.NewMemory(pop[0]))
		if sl {
			tag.ApplySelect(SelectCmd{Target: TargetSL, Action: ActionAssertNothing, MemBank: epc.BankEPC})
		}
		if flagB {
			tag.SetInventoried(S2, FlagB)
		}
		q := Query{Session: S2, Q: 0}
		switch sel % 3 {
		case 0:
			q.Sel = SelAll
		case 1:
			q.Sel = SelNotSL
		case 2:
			q.Sel = SelSL
		}
		if target {
			q.Target = FlagB
		}
		want := true
		if q.Sel == SelSL && !sl {
			want = false
		}
		if q.Sel == SelNotSL && sl {
			want = false
		}
		if (q.Target == FlagB) != flagB {
			want = false
		}
		got := tag.HandleQuery(q, rng) != nil // Q=0 ⇒ participants reply
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
