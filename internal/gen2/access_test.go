package gen2

import (
	"math/rand"
	"testing"

	"tagwatch/internal/epc"
)

// singulate drives a tag to Acknowledged and returns its RN16.
func singulate(t *testing.T, tag *Tag, rng *rand.Rand) uint16 {
	t.Helper()
	rep := tag.HandleQuery(Query{Session: S1, Target: FlagA, Q: 0}, rng)
	if rep == nil {
		t.Fatal("Q=0 participant must reply")
	}
	if tag.HandleACK(ACK{RN16: rep.RN16}) == nil {
		t.Fatal("ACK must elicit EPC")
	}
	return rep.RN16
}

func TestReqRNEntersSecured(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tag := newTag("30f4ab12cd0045e100000001")
	rn := singulate(t, tag, rng)
	handle, ok := tag.HandleReqRN(rn, rng)
	if !ok {
		t.Fatal("Req_RN with matching RN16 must succeed")
	}
	// Factory-default (zero) access password → Secured directly.
	if tag.State() != StateSecured {
		t.Fatalf("state = %v, want Secured", tag.State())
	}
	if tag.Handle() != handle {
		t.Fatal("handle mismatch")
	}
}

func TestReqRNNonZeroPasswordEntersOpen(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tag := newTag("30f4ab12cd0045e100000001")
	if err := tag.Mem.WriteWords(epc.BankReserved, 2, []uint16{0xBEEF, 0x1234}); err != nil {
		t.Fatal(err)
	}
	rn := singulate(t, tag, rng)
	if _, ok := tag.HandleReqRN(rn, rng); !ok {
		t.Fatal("Req_RN must succeed")
	}
	if tag.State() != StateOpen {
		t.Fatalf("state = %v, want Open with a set access password", tag.State())
	}
}

func TestReqRNWrongRN16Ignored(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tag := newTag("30f4ab12cd0045e100000001")
	rn := singulate(t, tag, rng)
	if _, ok := tag.HandleReqRN(rn^0xFFFF, rng); ok {
		t.Fatal("wrong RN16 must be ignored")
	}
	if tag.State() != StateAcknowledged {
		t.Fatalf("state = %v, want Acknowledged preserved", tag.State())
	}
	// Req_RN outside Acknowledged is also ignored.
	fresh := newTag("30f4ab12cd0045e100000002")
	if _, ok := fresh.HandleReqRN(0, rng); ok {
		t.Fatal("Ready tag must ignore Req_RN")
	}
}

func TestReadViaHandle(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tag := newTag("30f4ab12cd0045e100000001")
	rn := singulate(t, tag, rng)
	handle, _ := tag.HandleReqRN(rn, rng)

	// Read the EPC code words from the EPC bank.
	words, ok := tag.HandleRead(handle, epc.BankEPC, 2, 6)
	if !ok {
		t.Fatal("read must succeed")
	}
	if words[0] != 0x30f4 {
		t.Fatalf("words = %04x", words)
	}
	// Wrong handle stays silent.
	if _, ok := tag.HandleRead(handle^1, epc.BankEPC, 2, 1); ok {
		t.Fatal("wrong handle must be ignored")
	}
	// Overrun read fails.
	if _, ok := tag.HandleRead(handle, epc.BankEPC, 7, 4); ok {
		t.Fatal("overrun read must fail")
	}
}

func TestWriteViaHandle(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tag := newTag("30f4ab12cd0045e100000001")
	rn := singulate(t, tag, rng)
	handle, _ := tag.HandleReqRN(rn, rng)

	if !tag.HandleWrite(handle, epc.BankUser, 0, 0xCAFE) {
		t.Fatal("write must succeed")
	}
	if !tag.HandleBlockWrite(handle, epc.BankUser, 1, []uint16{0xBEEF, 0xF00D}) {
		t.Fatal("block write must succeed")
	}
	words, ok := tag.HandleRead(handle, epc.BankUser, 0, 3)
	if !ok || words[0] != 0xCAFE || words[1] != 0xBEEF || words[2] != 0xF00D {
		t.Fatalf("read back %04x (%v)", words, ok)
	}
	if tag.HandleWrite(handle^1, epc.BankUser, 0, 1) {
		t.Fatal("wrong handle write must fail")
	}
	if tag.HandleBlockWrite(handle, epc.BankUser, 0, nil) {
		t.Fatal("empty block write must fail")
	}
}

func TestAccessStateCompletesInventory(t *testing.T) {
	// After access, the next QueryRep completes the singulation: the
	// inventoried flag flips exactly as from Acknowledged.
	rng := rand.New(rand.NewSource(6))
	tag := newTag("30f4ab12cd0045e100000001")
	rn := singulate(t, tag, rng)
	tag.HandleReqRN(rn, rng)
	if tag.HandleQueryRep(QueryRep{Session: S1}, rng) != nil {
		t.Fatal("access-state tag must not reply to QueryRep")
	}
	if tag.Inventoried(S1) != FlagB || tag.State() != StateReady {
		t.Fatalf("flag=%v state=%v", tag.Inventoried(S1), tag.State())
	}
}

func TestNAKFromAccessState(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tag := newTag("30f4ab12cd0045e100000001")
	rn := singulate(t, tag, rng)
	tag.HandleReqRN(rn, rng)
	tag.HandleNAK()
	if tag.State() != StateArbitrate {
		t.Fatalf("state after NAK = %v", tag.State())
	}
	if tag.Inventoried(S1) != FlagA {
		t.Fatal("NAK must not flip the flag")
	}
}

func TestAccessTimings(t *testing.T) {
	lt := ImpinjAutosetProfile()
	if lt.ReqRNDuration() <= 0 {
		t.Fatal("ReqRN duration")
	}
	if lt.ReadDuration(4) <= lt.ReadDuration(1) {
		t.Fatal("longer reads must take longer")
	}
	// Writes are dominated by the EEPROM commit: far slower than reads.
	if lt.WriteDuration(1) < 2*lt.ReadDuration(1) {
		t.Fatalf("write (%v) should dwarf read (%v)", lt.WriteDuration(1), lt.ReadDuration(1))
	}
	if lt.WriteDuration(3) != 3*lt.WriteDuration(1) {
		t.Fatal("writes are per-word")
	}
	if StateOpen.String() != "Open" || StateSecured.String() != "Secured" {
		t.Fatal("state strings")
	}
}
