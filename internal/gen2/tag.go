package gen2

import (
	"math/rand"

	"tagwatch/internal/epc"
)

// Tag is the link-layer state machine of one Gen2 tag: its memory, SL and
// per-session inventoried flags, and the inventory state it moves through
// during a round. Tag is not safe for concurrent use; the reader engine
// drives all tags from a single goroutine, as a real reader's medium
// access is inherently serial.
type Tag struct {
	Mem *epc.Memory

	sl    bool
	inv   [4]Flag
	state State

	session Session // session of the round the tag is participating in
	slot    uint32  // 15-bit slot counter per Gen2 (we keep headroom)
	rn16    uint16
	handle  uint16 // access handle (Open/Secured)
}

// NewTag builds a tag around existing memory.
func NewTag(mem *epc.Memory) *Tag {
	return &Tag{Mem: mem}
}

// EPC is a convenience accessor for the tag's EPC code.
func (t *Tag) EPC() epc.EPC { return t.Mem.EPC() }

// SL reports the tag's SL flag.
func (t *Tag) SL() bool { return t.sl }

// Inventoried returns the inventoried flag for a session.
func (t *Tag) Inventoried(s Session) Flag { return t.inv[s&3] }

// SetInventoried forces a session flag; tests and the reader's
// round-boundary housekeeping use it.
func (t *Tag) SetInventoried(s Session, f Flag) { t.inv[s&3] = f }

// State returns the tag's current inventory state.
func (t *Tag) State() State { return t.state }

// Reset returns the tag to Ready without touching its flags — e.g. when it
// loses power as the reader hops channels.
func (t *Tag) Reset() { t.state = StateReady }

// ApplySelect applies a Select command to the tag's flags per the Gen2
// action table. Every tag in the field processes every Select, matching or
// not.
func (t *Tag) ApplySelect(cmd SelectCmd) {
	match := cmd.Matches(t.Mem)
	// Decode the action into the operation for this tag.
	type op uint8
	const (
		opNothing  op = iota
		opAssert      // assert SL / set inventoried → A
		opDeassert    // deassert SL / set inventoried → B
		opNegate      // toggle SL / A↔B
	)
	var o op
	switch cmd.Action {
	case ActionAssertDeassert:
		if match {
			o = opAssert
		} else {
			o = opDeassert
		}
	case ActionAssertNothing:
		if match {
			o = opAssert
		}
	case ActionNothingDeassert:
		if !match {
			o = opDeassert
		}
	case ActionNegateNothing:
		if match {
			o = opNegate
		}
	case ActionDeassertAssert:
		if match {
			o = opDeassert
		} else {
			o = opAssert
		}
	case ActionDeassertNothing:
		if match {
			o = opDeassert
		}
	case ActionNothingAssert:
		if !match {
			o = opAssert
		}
	case ActionNothingNegate:
		if !match {
			o = opNegate
		}
	}
	if o == opNothing {
		return
	}
	if cmd.Target == TargetSL {
		switch o {
		case opAssert:
			t.sl = true
		case opDeassert:
			t.sl = false
		case opNegate:
			t.sl = !t.sl
		}
		return
	}
	s := Session(cmd.Target) & 3
	switch o {
	case opAssert:
		t.inv[s] = FlagA
	case opDeassert:
		t.inv[s] = FlagB
	case opNegate:
		t.inv[s] = t.inv[s].Invert()
	}
}

// participates reports whether the tag meets a Query's (Sel, Session,
// Target) criteria.
func (t *Tag) participates(q Query) bool {
	switch q.Sel {
	case SelSL:
		if !t.sl {
			return false
		}
	case SelNotSL:
		if t.sl {
			return false
		}
	}
	return t.inv[q.Session&3] == q.Target
}

// Reply is what a tag backscatters in a slot.
type Reply struct {
	RN16 uint16
}

// HandleQuery processes a Query that begins a new inventory round. If the
// tag participates it draws a slot in [0, 2^Q); a zero draw makes it reply
// immediately. The returned pointer is nil when the tag stays silent.
//
// A tag in Acknowledged that sees a new Query for its session first inverts
// its inventoried flag (its previous singulation succeeded) and then
// re-evaluates participation, per the Gen2 state diagram.
func (t *Tag) HandleQuery(q Query, rng *rand.Rand) *Reply {
	if t.doneState() && q.Session == t.session {
		t.inv[t.session&3] = t.inv[t.session&3].Invert()
	}
	t.state = StateReady
	if !t.participates(q) {
		return nil
	}
	t.session = q.Session
	t.slot = uint32(rng.Intn(1 << uint(q.Q&0x0F)))
	if t.slot == 0 {
		t.state = StateReply
		t.rn16 = uint16(rng.Intn(1 << 16))
		return &Reply{RN16: t.rn16}
	}
	t.state = StateArbitrate
	return nil
}

// HandleQueryRep processes a QueryRep for a session. Arbitrating tags
// decrement their slot counter and reply at zero. An Acknowledged tag
// inverts its inventoried flag and leaves the round. Tags in Reply that
// were never acknowledged return to Arbitrate with their counter exhausted
// (they effectively wait for the next round).
func (t *Tag) HandleQueryRep(qr QueryRep, rng *rand.Rand) *Reply {
	if qr.Session != t.session {
		return nil
	}
	switch t.state {
	case StateAcknowledged, StateOpen, StateSecured:
		t.inv[t.session&3] = t.inv[t.session&3].Invert()
		t.state = StateReady
		return nil
	case StateReply:
		// Collided or unacknowledged: per Gen2 the tag returns to
		// Arbitrate; its counter is 0 so it would reply again at the next
		// QueryRep. Real tags back off by redrawing at the next
		// QueryAdjust/Query; to avoid livelock we model the standard
		// behaviour of waiting with an exhausted counter (0x7FFF wrap).
		t.state = StateArbitrate
		t.slot = 0x7FFF
		return nil
	case StateArbitrate:
		t.slot--
		if t.slot == 0 {
			t.state = StateReply
			t.rn16 = uint16(rng.Intn(1 << 16))
			return &Reply{RN16: t.rn16}
		}
	}
	return nil
}

// HandleQueryAdjust processes a QueryAdjust: participating (arbitrating)
// tags redraw their slot counters from the adjusted frame size. The reader
// engine passes the new Q since the tag tracks only its draw.
func (t *Tag) HandleQueryAdjust(qa QueryAdjust, newQ uint8, rng *rand.Rand) *Reply {
	if qa.Session != t.session {
		return nil
	}
	switch t.state {
	case StateAcknowledged, StateOpen, StateSecured:
		t.inv[t.session&3] = t.inv[t.session&3].Invert()
		t.state = StateReady
		return nil
	case StateArbitrate, StateReply:
		t.slot = uint32(rng.Intn(1 << uint(newQ&0x0F)))
		if t.slot == 0 {
			t.state = StateReply
			t.rn16 = uint16(rng.Intn(1 << 16))
			return &Reply{RN16: t.rn16}
		}
		t.state = StateArbitrate
	}
	return nil
}

// EPCReply is a tag's answer to a valid ACK: its protocol-control word and
// EPC, protected by CRC-16.
type EPCReply struct {
	PC  uint16
	EPC epc.EPC
	CRC uint16
}

// HandleACK processes an ACK. A tag in Reply whose RN16 matches
// backscatters PC+EPC and moves to Acknowledged; anything else stays
// silent. An ACK with a wrong RN16 sends the tag back to Arbitrate.
func (t *Tag) HandleACK(a ACK) *EPCReply {
	if t.state != StateReply {
		return nil
	}
	if a.RN16 != t.rn16 {
		t.state = StateArbitrate
		t.slot = 0x7FFF
		return nil
	}
	t.state = StateAcknowledged
	code := t.Mem.EPC()
	words := (code.Bits() + 15) / 16
	pc := uint16(words) << 11
	body := make([]byte, 2, 2+2*words)
	body[0] = byte(pc >> 8)
	body[1] = byte(pc)
	body = append(body, code.Bytes()...)
	return &EPCReply{PC: pc, EPC: code, CRC: epc.CRC16(body)}
}

// HandleNAK returns a replying, acknowledged or access-state tag to
// Arbitrate without inverting its inventoried flag.
func (t *Tag) HandleNAK() {
	switch t.state {
	case StateReply, StateAcknowledged, StateOpen, StateSecured:
		t.state = StateArbitrate
		t.slot = 0x7FFF
	}
}

// doneState reports whether the tag completed singulation (Acknowledged or
// an access state) and should invert its flag on the next round command.
func (t *Tag) doneState() bool {
	switch t.state {
	case StateAcknowledged, StateOpen, StateSecured:
		return true
	}
	return false
}
