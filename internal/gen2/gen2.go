// Package gen2 implements the tag-facing half of the EPCglobal Class-1
// Generation-2 (Gen2) UHF air protocol: the inventory commands a reader
// issues (Select, Query, QueryAdjust, QueryRep, ACK, NAK), the tag-side
// state machine that answers them, and the link-timing model that converts
// a sequence of commands and replies into elapsed air time.
//
// The package is the substrate under both the reader simulator and the
// paper's reading-rate model: every empty, collided and successful slot the
// paper's §2 analyses is produced by these state machines, and every
// selective-reading experiment of §5 drives the Select logic implemented
// here.
package gen2

import "fmt"

// Session is one of the four Gen2 inventory sessions. Each session has an
// independent inventoried flag per tag, so multiple readers (or logical
// reading phases) can inventory the same population independently.
type Session uint8

// The four Gen2 sessions.
const (
	S0 Session = iota
	S1
	S2
	S3
)

// String implements fmt.Stringer.
func (s Session) String() string { return fmt.Sprintf("S%d", uint8(s)) }

// Flag is the value of an inventoried flag: tags move between A and B as
// they are inventoried.
type Flag uint8

// Inventoried flag values.
const (
	FlagA Flag = iota
	FlagB
)

// String implements fmt.Stringer.
func (f Flag) String() string {
	if f == FlagA {
		return "A"
	}
	return "B"
}

// Invert returns the opposite flag.
func (f Flag) Invert() Flag { return f ^ 1 }

// State is a tag's inventory state.
type State uint8

// Tag inventory states (the subset of the Gen2 state diagram exercised by
// inventory; Open/Secured belong to the access layer, which the paper does
// not use).
const (
	StateReady State = iota
	StateArbitrate
	StateReply
	StateAcknowledged
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateReady:
		return "Ready"
	case StateArbitrate:
		return "Arbitrate"
	case StateReply:
		return "Reply"
	case StateAcknowledged:
		return "Acknowledged"
	case StateOpen:
		return "Open"
	case StateSecured:
		return "Secured"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Sel is the Query command's Sel field: which tags (by SL flag) participate
// in the round.
type Sel uint8

// Sel field values.
const (
	SelAll   Sel = 0 // all tags regardless of SL
	SelNotSL Sel = 2 // only tags with SL deasserted
	SelSL    Sel = 3 // only tags with SL asserted
)

// Target is the Select command's Target field: which flag the command acts
// on — the SL flag, or the inventoried flag of one session.
type Target uint8

// Select targets.
const (
	TargetS0 Target = iota // inventoried flag of S0
	TargetS1
	TargetS2
	TargetS3
	TargetSL // the SL flag
)

// String implements fmt.Stringer.
func (t Target) String() string {
	if t == TargetSL {
		return "SL"
	}
	return fmt.Sprintf("S%d-flag", uint8(t))
}

// Action is the Select command's 3-bit Action field. Each action specifies
// what happens to matching and non-matching tags (assert/deassert SL, or
// set the targeted inventoried flag to A/B, or do nothing).
type Action uint8

// The eight Select actions, named match/non-match:
//
//	ActionAssertDeassert  matching: assert SL or inv→A; else: deassert SL or inv→B
//	ActionAssertNothing   matching: assert SL or inv→A; else: nothing
//	ActionNothingDeassert matching: nothing;            else: deassert SL or inv→B
//	ActionNegateNothing   matching: negate SL or A↔B;   else: nothing
//	ActionDeassertAssert  matching: deassert SL or inv→B; else: assert SL or inv→A
//	ActionDeassertNothing matching: deassert SL or inv→B; else: nothing
//	ActionNothingAssert   matching: nothing;            else: assert SL or inv→A
//	ActionNothingNegate   matching: nothing;            else: negate SL or A↔B
const (
	ActionAssertDeassert Action = iota
	ActionAssertNothing
	ActionNothingDeassert
	ActionNegateNothing
	ActionDeassertAssert
	ActionDeassertNothing
	ActionNothingAssert
	ActionNothingNegate
)

// QueryTarget is the Query command's Target field: which inventoried-flag
// value participates.
type QueryTarget = Flag

// Query starts an inventory round: tags satisfying (Sel, Session, Target)
// load a random slot counter in [0, 2^Q).
type Query struct {
	Sel     Sel
	Session Session
	Target  QueryTarget // tags whose inventoried flag equals this participate
	Q       uint8       // frame length 2^Q slots; 0..15
}

// QueryAdjust adjusts Q mid-round; participating tags redraw their slots.
// UpDn is +1, 0 or -1.
type QueryAdjust struct {
	Session Session
	UpDn    int8
}

// QueryRep opens the next slot of the round: arbitrating tags decrement
// their slot counters.
type QueryRep struct {
	Session Session
}

// ACK acknowledges the RN16 backscattered in a singleton slot; the tag
// answers with its PC+EPC.
type ACK struct {
	RN16 uint16
}

// NAK returns replying tags to Arbitrate without touching their flags.
type NAK struct{}
