package gen2

import (
	"fmt"
	"time"
)

// LinkTiming models the physical-layer timing of a Gen2 link: how long
// reader commands and tag replies occupy the air, and the mandated
// turnaround gaps T1–T3. It is the source of the slot durations behind the
// paper's τ̄ and of the per-round overhead contributing to τ₀.
type LinkTiming struct {
	// TariUS is the reader's Type-A reference interval (data-0 length) in
	// microseconds: 6.25, 12.5 or 25.
	TariUS float64
	// RTcalUS is the reader→tag calibration symbol: data-0 + data-1
	// lengths, between 2.5 and 3 Tari.
	RTcalUS float64
	// TRcalUS is the tag→reader calibration symbol; the backscatter link
	// frequency is BLF = DR / TRcal.
	TRcalUS float64
	// DR is the divide ratio from the Query command: 8 or 64/3.
	DR float64
	// M is the tag-to-reader cycles per symbol: 1 (FM0), 2, 4, 8 (Miller).
	M int
	// TRext selects the extended tag preamble with pilot tone.
	TRext bool
}

// ImpinjFastProfile returns timing approximating the ImpinJ "max
// throughput" mode (Mode 0: Tari 6.25 µs, FM0 at 640 kHz BLF), the regime
// in which the paper's measured mean slot time τ̄ ≈ 0.18 ms is attainable.
func ImpinjFastProfile() LinkTiming {
	return LinkTiming{TariUS: 6.25, RTcalUS: 15.625, TRcalUS: 33.3, DR: 64.0 / 3, M: 1, TRext: false}
}

// ImpinjAutosetProfile returns timing approximating the reader's default
// autoset operating point (Miller-2 at ~427 kHz BLF, Tari 12.5 µs): the
// middle ground a Speedway picks in a typical lab environment, and the
// profile under which the simulated IRR curve lands closest to the paper's
// measured 63→12 Hz collapse (Fig. 2).
func ImpinjAutosetProfile() LinkTiming {
	return LinkTiming{TariUS: 12.5, RTcalUS: 31.25, TRcalUS: 50, DR: 64.0 / 3, M: 2, TRext: false}
}

// ImpinjDenseProfile returns timing approximating a dense-reader Miller-4
// mode (Mode 2/3 class): slower but more robust.
func ImpinjDenseProfile() LinkTiming {
	return LinkTiming{TariUS: 25, RTcalUS: 62.5, TRcalUS: 83.3, DR: 64.0 / 3, M: 4, TRext: true}
}

// BLFkHz returns the backscatter link frequency in kHz.
func (lt LinkTiming) BLFkHz() float64 { return lt.DR / lt.TRcalUS * 1000 }

// TpriUS returns the backscatter symbol period (one tag bit takes M·Tpri).
func (lt LinkTiming) TpriUS() float64 { return lt.TRcalUS / lt.DR }

// avgReaderBitUS is the mean reader PIE symbol length assuming equiprobable
// bits: data-0 is Tari, data-1 between 1.5 and 2 Tari (we use 1.75).
func (lt LinkTiming) avgReaderBitUS() float64 { return lt.TariUS * (1 + 1.75) / 2 }

// frameSyncUS is the delimiter + data-0 + RTcal sequence preceding every
// reader command.
func (lt LinkTiming) frameSyncUS() float64 { return 12.5 + lt.TariUS + lt.RTcalUS }

// preambleUS is frame-sync + TRcal, required before Query.
func (lt LinkTiming) preambleUS() float64 { return lt.frameSyncUS() + lt.TRcalUS }

func us(x float64) time.Duration { return time.Duration(x * float64(time.Microsecond)) }

// CommandDuration returns the air time of a reader command of the given
// bit count. Query carries the full preamble; every other command carries a
// frame-sync.
func (lt LinkTiming) CommandDuration(bits int, isQuery bool) time.Duration {
	pre := lt.frameSyncUS()
	if isQuery {
		pre = lt.preambleUS()
	}
	return us(pre + float64(bits)*lt.avgReaderBitUS())
}

// tagPreambleBits is the length of the tag reply preamble in symbols.
func (lt LinkTiming) tagPreambleBits() int {
	if lt.M == 1 { // FM0
		if lt.TRext {
			return 18 // 12 pilot + 6 preamble
		}
		return 6
	}
	if lt.TRext {
		return 22 // 16 pilot + 6
	}
	return 10
}

// ReplyDuration returns the air time of a tag reply of the given payload
// bit count (plus preamble and the trailing dummy-1 bit).
func (lt LinkTiming) ReplyDuration(bits int) time.Duration {
	total := float64(lt.tagPreambleBits()+bits+1) * float64(lt.M) * lt.TpriUS()
	return us(total)
}

// T1 is the reader-command to tag-response turnaround: max(RTcal, 10·Tpri).
func (lt LinkTiming) T1() time.Duration {
	t := lt.RTcalUS
	if p := 10 * lt.TpriUS(); p > t {
		t = p
	}
	return us(t)
}

// T2 is the tag-response to reader-command turnaround (3–20 Tpri; we use
// the midpoint 10).
func (lt LinkTiming) T2() time.Duration { return us(10 * lt.TpriUS()) }

// T3 is the additional time a reader waits after T1 before declaring a
// slot empty.
func (lt LinkTiming) T3() time.Duration { return us(10 * lt.TpriUS()) }

// Gen2 command payload lengths in bits.
const (
	QueryBits       = 22
	QueryRepBits    = 4
	QueryAdjustBits = 9
	ACKBits         = 18
	NAKBits         = 8
	RN16Bits        = 16
)

// QueryDuration is the air time of a Query command.
func (lt LinkTiming) QueryDuration() time.Duration {
	return lt.CommandDuration(QueryBits, true)
}

// QueryRepDuration is the air time of a QueryRep command.
func (lt LinkTiming) QueryRepDuration() time.Duration {
	return lt.CommandDuration(QueryRepBits, false)
}

// QueryAdjustDuration is the air time of a QueryAdjust command.
func (lt LinkTiming) QueryAdjustDuration() time.Duration {
	return lt.CommandDuration(QueryAdjustBits, false)
}

// ACKDuration is the air time of an ACK command.
func (lt LinkTiming) ACKDuration() time.Duration {
	return lt.CommandDuration(ACKBits, false)
}

// SelectDuration is the air time of a Select command with the given mask
// length (see SelectCmd.CommandBits).
func (lt LinkTiming) SelectDuration(cmd SelectCmd) time.Duration {
	return lt.CommandDuration(cmd.CommandBits(), false)
}

// RN16Duration is the air time of a tag's RN16 reply.
func (lt LinkTiming) RN16Duration() time.Duration { return lt.ReplyDuration(RN16Bits) }

// EPCReplyDuration is the air time of a PC+EPC+CRC16 reply for an EPC of
// the given bit length.
func (lt LinkTiming) EPCReplyDuration(epcBits int) time.Duration {
	words := (epcBits + 15) / 16
	return lt.ReplyDuration(16 + 16*words + 16)
}

// EmptySlotDuration is the cost of a slot in which no tag replies: the slot
// command plus T1+T3 of listening.
func (lt LinkTiming) EmptySlotDuration(slotCmd time.Duration) time.Duration {
	return slotCmd + lt.T1() + lt.T3()
}

// CollisionSlotDuration is the cost of a slot with a collided RN16.
func (lt LinkTiming) CollisionSlotDuration(slotCmd time.Duration) time.Duration {
	return slotCmd + lt.T1() + lt.RN16Duration() + lt.T2()
}

// SingletonSlotDuration is the cost of a successful slot: RN16, ACK and the
// PC+EPC reply.
func (lt LinkTiming) SingletonSlotDuration(slotCmd time.Duration, epcBits int) time.Duration {
	return slotCmd + lt.T1() + lt.RN16Duration() + lt.T2() +
		lt.ACKDuration() + lt.T1() + lt.EPCReplyDuration(epcBits) + lt.T2()
}

// String summarises the profile.
func (lt LinkTiming) String() string {
	return fmt.Sprintf("gen2.LinkTiming{Tari=%.2fµs BLF=%.0fkHz M=%d}", lt.TariUS, lt.BLFkHz(), lt.M)
}
