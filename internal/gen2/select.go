package gen2

import (
	"fmt"

	"tagwatch/internal/epc"
)

// SelectCmd is the Gen2 Select command. Its (MemBank, Pointer, Length,
// Mask) quadruple forms the bitmask of the paper's §5: tags whose memory
// bits [Pointer, Pointer+Length) in MemBank equal Mask are "matching".
// Target and Action then steer the SL or inventoried flags of matching and
// non-matching tags.
//
// The paper's scheduler always uses MemBank = EPC with Pointer addressed
// past the StoredCRC+StoredPC header; see schedule.Bitmask.
type SelectCmd struct {
	Target  Target
	Action  Action
	MemBank epc.MemoryBank
	Pointer int // bit address into the bank
	Mask    epc.EPC
}

// Length returns the Select mask length in bits (the Length field is
// implied by the mask).
func (s SelectCmd) Length() int { return s.Mask.Bits() }

// String renders the command in the paper's S(mask, pointer, length)
// notation.
func (s SelectCmd) String() string {
	return fmt.Sprintf("Select{%s/%s %s(p=%d,l=%d,m=%s)}",
		s.Target, actionName(s.Action), s.MemBank, s.Pointer, s.Length(), s.Mask)
}

func actionName(a Action) string {
	names := [...]string{
		"assert/deassert", "assert/-", "-/deassert", "negate/-",
		"deassert/assert", "deassert/-", "-/assert", "-/negate",
	}
	if int(a) < len(names) {
		return names[a]
	}
	return fmt.Sprintf("action%d", uint8(a))
}

// Matches reports whether the command's bitmask covers the given tag
// memory.
func (s SelectCmd) Matches(m *epc.Memory) bool {
	return m.Match(s.MemBank, s.Pointer, s.Mask)
}

// CommandBits returns the approximate over-the-air length of the Select
// command in reader bits: 4 (command code) + 3 (target) + 3 (action) +
// 2 (membank) + EBV pointer + 8 (length) + mask + 1 (truncate) + 16 (CRC).
// The pointer is an extensible bit vector of 8-bit blocks, each carrying 7
// payload bits.
func (s SelectCmd) CommandBits() int {
	ebv := 8
	for p := s.Pointer; p >= 128; p >>= 7 {
		ebv += 8
	}
	return 4 + 3 + 3 + 2 + ebv + 8 + s.Mask.Bits() + 1 + 16
}
