package gen2

import (
	"testing"
	"time"

	"tagwatch/internal/epc"
)

func TestFastProfileBasics(t *testing.T) {
	lt := ImpinjFastProfile()
	if blf := lt.BLFkHz(); blf < 600 || blf > 680 {
		t.Fatalf("fast profile BLF = %.0f kHz, want ≈640", blf)
	}
	if lt.TpriUS() <= 0 {
		t.Fatal("Tpri must be positive")
	}
	if lt.String() == "" {
		t.Fatal("String must render")
	}
}

func TestDenseProfileSlower(t *testing.T) {
	fast, dense := ImpinjFastProfile(), ImpinjDenseProfile()
	if dense.RN16Duration() <= fast.RN16Duration() {
		t.Fatal("Miller-4 replies must be slower than FM0")
	}
	if dense.QueryDuration() <= fast.QueryDuration() {
		t.Fatal("Tari-25 commands must be slower than Tari-6.25")
	}
}

func TestSlotDurationOrdering(t *testing.T) {
	for _, lt := range []LinkTiming{ImpinjFastProfile(), ImpinjDenseProfile()} {
		qr := lt.QueryRepDuration()
		empty := lt.EmptySlotDuration(qr)
		coll := lt.CollisionSlotDuration(qr)
		single := lt.SingletonSlotDuration(qr, 96)
		if !(empty < coll && coll < single) {
			t.Fatalf("%v: slot ordering empty=%v coll=%v single=%v", lt, empty, coll, single)
		}
		if empty <= 0 {
			t.Fatal("durations must be positive")
		}
	}
}

func TestFastProfileSlotMagnitudes(t *testing.T) {
	// The paper calibrates a mean slot time τ̄ ≈ 0.18 ms on the R420. Our
	// fast profile should put the DFSA-weighted mean in the same regime
	// (0.1–0.5 ms): empty ≈ 0.37, single ≈ 0.37, collision ≈ 0.26 at f=n.
	lt := ImpinjFastProfile()
	qr := lt.QueryRepDuration()
	mean := 0.368*float64(lt.EmptySlotDuration(qr)) +
		0.368*float64(lt.SingletonSlotDuration(qr, 96)) +
		0.264*float64(lt.CollisionSlotDuration(qr))
	meanMS := mean / float64(time.Millisecond)
	if meanMS < 0.1 || meanMS > 0.5 {
		t.Fatalf("weighted mean slot = %.3f ms, want 0.1–0.5 ms", meanMS)
	}
}

func TestQueryCarriesLongerPreamble(t *testing.T) {
	lt := ImpinjFastProfile()
	// Query (22 bits, full preamble) vs a hypothetical 22-bit non-query.
	if lt.CommandDuration(QueryBits, true) <= lt.CommandDuration(QueryBits, false) {
		t.Fatal("Query preamble must include TRcal")
	}
}

func TestTRextLengthensReplies(t *testing.T) {
	lt := ImpinjFastProfile()
	ext := lt
	ext.TRext = true
	if ext.RN16Duration() <= lt.RN16Duration() {
		t.Fatal("TRext pilot must lengthen the reply")
	}
	m4 := lt
	m4.M = 4
	if m4.tagPreambleBits() != 10 {
		t.Fatalf("Miller preamble bits = %d, want 10", m4.tagPreambleBits())
	}
	m4.TRext = true
	if m4.tagPreambleBits() != 22 {
		t.Fatalf("Miller TRext preamble bits = %d, want 22", m4.tagPreambleBits())
	}
}

func TestEPCReplyScalesWithLength(t *testing.T) {
	lt := ImpinjFastProfile()
	if lt.EPCReplyDuration(128) <= lt.EPCReplyDuration(96) {
		t.Fatal("longer EPC must take longer")
	}
}

func TestSelectDurationScalesWithMask(t *testing.T) {
	lt := ImpinjFastProfile()
	short := SelectCmd{Mask: epc.New([]byte{0xFF})}
	long := SelectCmd{Mask: epc.New(make([]byte, 12))}
	if lt.SelectDuration(long) <= lt.SelectDuration(short) {
		t.Fatal("longer mask must take longer on air")
	}
}

func TestT1T2T3Positive(t *testing.T) {
	lt := ImpinjFastProfile()
	if lt.T1() <= 0 || lt.T2() <= 0 || lt.T3() <= 0 {
		t.Fatal("turnaround times must be positive")
	}
	// T1 = max(RTcal, 10 Tpri): for the fast profile 10·Tpri = 15.6 µs ≈
	// RTcal; check T1 is at least both.
	if lt.T1() < us(lt.RTcalUS) {
		t.Fatal("T1 must be at least RTcal")
	}
}
