package gen2

import (
	"math/rand"
	"time"

	"tagwatch/internal/epc"
)

// Access-layer states (the Gen2 state diagram beyond inventory): a
// singulated tag moves to Open (or Secured when its access password is
// zero) on Req_RN and then accepts Read/Write/BlockWrite commands
// addressed by its handle.
const (
	StateOpen    State = 4
	StateSecured State = 5
)

// Handle returns the tag's access handle; only meaningful in Open/Secured.
func (t *Tag) Handle() uint16 { return t.handle }

// HandleReqRN processes a Req_RN carrying the RN16 from the singulation.
// A tag in Acknowledged with a matching RN16 backscatters a fresh handle
// and enters the access state: Secured directly when the access password
// is zero (the factory default and the common deployment), Open
// otherwise. A mismatched RN16 is ignored (the tag stays put).
func (t *Tag) HandleReqRN(rn16 uint16, rng *rand.Rand) (uint16, bool) {
	if t.state != StateAcknowledged || rn16 != t.rn16 {
		return 0, false
	}
	t.handle = uint16(rng.Intn(1 << 16))
	if t.accessPasswordZero() {
		t.state = StateSecured
	} else {
		t.state = StateOpen
	}
	return t.handle, true
}

// accessPasswordZero reports whether the reserved bank's access password
// (words 2–3) is zero or absent.
func (t *Tag) accessPasswordZero() bool {
	words, err := t.Mem.ReadWords(epc.BankReserved, 2, 2)
	if err != nil {
		return true
	}
	return words[0] == 0 && words[1] == 0
}

// inAccess reports whether the tag is in an access state with the given
// handle.
func (t *Tag) inAccess(handle uint16) bool {
	return (t.state == StateOpen || t.state == StateSecured) && handle == t.handle
}

// HandleRead processes a Read command: words from a memory bank, addressed
// by handle. It returns nil (and false) when the tag is not in access
// state, the handle mismatches, or the window overruns the bank — the
// cases where a real tag stays silent or answers with an error code.
func (t *Tag) HandleRead(handle uint16, bank epc.MemoryBank, wordPtr, wordCount int) ([]uint16, bool) {
	if !t.inAccess(handle) {
		return nil, false
	}
	words, err := t.Mem.ReadWords(bank, wordPtr, wordCount)
	if err != nil {
		return nil, false
	}
	return words, true
}

// HandleWrite processes a single-word Write command (the Gen2 Write writes
// one 16-bit word, cover-coded with a fresh RN16 on the air — the cover
// coding is a transport detail the simulator does not need to model).
func (t *Tag) HandleWrite(handle uint16, bank epc.MemoryBank, wordPtr int, word uint16) bool {
	if !t.inAccess(handle) {
		return false
	}
	return t.Mem.WriteWords(bank, wordPtr, []uint16{word}) == nil
}

// HandleBlockWrite processes a BlockWrite of several words.
func (t *Tag) HandleBlockWrite(handle uint16, bank epc.MemoryBank, wordPtr int, words []uint16) bool {
	if !t.inAccess(handle) || len(words) == 0 {
		return false
	}
	return t.Mem.WriteWords(bank, wordPtr, words) == nil
}

// Access command payload lengths in bits (approximate over-the-air sizes
// including CRC-16): Req_RN = 8+16+16, Read = 8+2+EBV+8+16+16,
// Write = 8+2+EBV+16+16+16 per word.
const (
	ReqRNBits      = 40
	HandleBits     = 32 // handle + CRC-16 backscatter
	readCmdBase    = 50
	writeCmdBits   = 66
	readReplyBase  = 33 // header + handle + CRC
	writeReplyBits = 33
)

// ReqRNDuration is the air time of Req_RN plus the handle backscatter.
func (lt LinkTiming) ReqRNDuration() time.Duration {
	return lt.CommandDuration(ReqRNBits, false) + lt.T1() + lt.ReplyDuration(HandleBits) + lt.T2()
}

// ReadDuration is the air time of a Read command and its wordCount-word
// reply.
func (lt LinkTiming) ReadDuration(wordCount int) time.Duration {
	return lt.CommandDuration(readCmdBase, false) + lt.T1() +
		lt.ReplyDuration(readReplyBase+16*wordCount) + lt.T2()
}

// WriteDuration is the air time of writing wordCount words (one Write
// command each) including the tag's EEPROM commit time — the dominant
// cost: real tags take up to 20 ms per word; we model a typical 1.5 ms.
func (lt LinkTiming) WriteDuration(wordCount int) time.Duration {
	perWord := lt.CommandDuration(writeCmdBits, false) + lt.T1() +
		lt.ReplyDuration(writeReplyBits) + lt.T2() + 1500*time.Microsecond
	return time.Duration(wordCount) * perWord
}
