package schedule_test

import (
	"fmt"

	"tagwatch/internal/epc"
	"tagwatch/internal/schedule"
)

// Example reproduces the paper's Fig. 9 worked example: three 6-bit target
// tags and one non-target, covered by greedy bitmask selection.
func Example() {
	population := []epc.EPC{
		epc.FromUint64(0b001110, 6),
		epc.FromUint64(0b010010, 6),
		epc.FromUint64(0b101100, 6), // targets ↑
		epc.FromUint64(0b110110, 6), // non-target
	}
	table, err := schedule.NewIndexTable(schedule.DefaultConfig(), population)
	if err != nil {
		panic(err)
	}
	plan, err := table.Select(population[:3])
	if err != nil {
		panic(err)
	}
	for _, m := range plan.Masks {
		fmt.Printf("mask %s covers %d tag(s), %d of them targets\n",
			m.Bitmask, m.Covered, m.TargetGain)
	}
	fmt.Printf("plan cost %v vs naive %v\n",
		plan.TotalCost.Round(1000000), plan.NaiveCost.Round(1000000))
	// Output:
	// mask S(00, 5, 1) covers 4 tag(s), 3 of them targets
	// plan cost 22ms vs naive 58ms
}
