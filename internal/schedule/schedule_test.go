package schedule

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"tagwatch/internal/aloha"
	"tagwatch/internal/epc"
	"tagwatch/internal/gen2"
)

func table(t *testing.T, cfg Config, pop []epc.EPC) *IndexTable {
	t.Helper()
	it, err := NewIndexTable(cfg, pop)
	if err != nil {
		t.Fatal(err)
	}
	return it
}

// planCovers asserts every target is covered by at least one plan mask and
// returns the set of non-targets covered.
func planCovers(t *testing.T, plan Plan, targets, pop []epc.EPC) map[epc.EPC]bool {
	t.Helper()
	isTarget := map[epc.EPC]bool{}
	for _, c := range targets {
		isTarget[c] = true
	}
	covered := map[epc.EPC]bool{}
	for _, pm := range plan.Masks {
		for _, c := range pop {
			if pm.Bitmask.Covers(c) {
				covered[c] = true
			}
		}
	}
	for _, c := range targets {
		if !covered[c] {
			t.Fatalf("target %s not covered by plan %v", c, plan.Masks)
		}
	}
	collateral := map[epc.EPC]bool{}
	for c := range covered {
		if !isTarget[c] {
			collateral[c] = true
		}
	}
	return collateral
}

func TestBitmaskCoversAndSelectCmdAgree(t *testing.T) {
	code := epc.MustParse("30f4ab12cd0045e100000001")
	mask, _ := code.Slice(8, 16)
	b := Bitmask{Mask: mask, Pointer: 8}
	if !b.Covers(code) {
		t.Fatal("self-derived window must cover")
	}
	other := epc.MustParse("e0f4ab12cd0045e100000001")
	// Window [8,24) is f4ab for both: covers other too.
	if !b.Covers(other) {
		t.Fatal("shared window must cover")
	}
	// The compiled Select command must match exactly the same tags at the
	// memory level (pointer shifted past StoredCRC+StoredPC).
	cmd := b.SelectCmd()
	if cmd.Pointer != epc.EPCWordOffset+8 {
		t.Fatalf("select pointer = %d", cmd.Pointer)
	}
	for _, c := range []epc.EPC{code, other, epc.MustParse("000000000000000000000000")} {
		mem := epc.NewMemory(c)
		if cmd.Matches(mem) != b.Covers(c) {
			t.Fatalf("Select/Covers disagree for %s", c)
		}
	}
	if b.String() == "" {
		t.Fatal("String must render")
	}
}

func fig9Population() (pop, targets []epc.EPC) {
	pop = []epc.EPC{
		epc.FromUint64(0b001110, 6),
		epc.FromUint64(0b010010, 6),
		epc.FromUint64(0b101100, 6),
		epc.FromUint64(0b110110, 6),
	}
	return pop, pop[:3]
}

func TestPaperFig9ExampleCoverageOptimal(t *testing.T) {
	// Fig. 9's "optimal" selection (covering the three targets with zero
	// non-targets, e.g. S(11₂,2,2) ∪ S(01₂,0,2)) is optimal under a pure
	// per-tag cost — i.e. τ₀ = 0, where extra rounds are free and reading
	// a collateral tag only ever hurts. The greedy must find it there.
	pop, targets := fig9Population()
	cfg := DefaultConfig()
	cfg.Cost = aloha.CostModel{Tau0: 0, TauBar: 180 * time.Microsecond}
	it := table(t, cfg, pop)
	plan, err := it.Select(targets)
	if err != nil {
		t.Fatal(err)
	}
	collateral := planCovers(t, plan, targets, pop)
	if len(collateral) != 0 {
		t.Fatalf("τ₀=0 plan should avoid the non-target; covered %v", collateral)
	}
	if plan.Collateral != 0 {
		t.Fatalf("plan.Collateral = %d, want 0", plan.Collateral)
	}
}

func TestPaperFig9ExamplePaperCost(t *testing.T) {
	// Under the measured cost model τ₀ = 19 ms dominates, so one round
	// covering all four tags (C(4) ≈ 21 ms) beats ANY two-round plan
	// (≥ 2τ₀ ≈ 38 ms) — the §5.2 point that "cost-effective selection may
	// collaterally involve non-target tags as long as their cost is less
	// than in the worst case".
	pop, targets := fig9Population()
	it := table(t, DefaultConfig(), pop)
	plan, err := it.Select(targets)
	if err != nil {
		t.Fatal(err)
	}
	planCovers(t, plan, targets, pop)
	if len(plan.Masks) != 1 {
		t.Fatalf("paper-cost plan used %d masks, want the single all-covering round", len(plan.Masks))
	}
	twoRound := 2 * aloha.PaperCostModel().Cost(2)
	if plan.TotalCost >= twoRound {
		t.Fatalf("plan cost %v must undercut the two-round alternative %v", plan.TotalCost, twoRound)
	}
}

func TestSharedPrefixCollapsesToOneMask(t *testing.T) {
	// Five targets sharing a unique prefix must be covered by ONE mask:
	// C(5) ≪ 5·C(1) because τ₀ dominates — the heart of why bitmask
	// grouping beats the naive plan.
	rng := rand.New(rand.NewSource(1))
	targets, err := epc.SequentialPopulation([]byte{0xAA, 0xBB, 0xCC}, 0, 5, 96)
	if err != nil {
		t.Fatal(err)
	}
	others, err := epc.RandomPopulation(rng, 40, 96)
	if err != nil {
		t.Fatal(err)
	}
	pop := append(append([]epc.EPC(nil), targets...), others...)
	it := table(t, DefaultConfig(), pop)
	plan, err := it.Select(targets)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Masks) != 1 {
		t.Fatalf("plan used %d masks, want 1 (shared prefix)", len(plan.Masks))
	}
	if plan.Masks[0].Covered < 5 {
		t.Fatalf("the mask covers %d tags, want ≥5", plan.Masks[0].Covered)
	}
	planCovers(t, plan, targets, pop)
	// And it must beat the naive plan.
	if plan.TotalCost >= plan.NaiveCost {
		t.Fatalf("grouped cost %v must beat naive %v", plan.TotalCost, plan.NaiveCost)
	}
}

func TestCoverAllInvariantRandom(t *testing.T) {
	// Property: for random populations and random target subsets, the plan
	// always covers every target.
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		pop, err := epc.RandomPopulation(rng, 60, 96)
		if err != nil {
			t.Fatal(err)
		}
		n := 1 + rng.Intn(8)
		targets := make([]epc.EPC, n)
		for i := range targets {
			targets[i] = pop[rng.Intn(len(pop))]
		}
		cfg := DefaultConfig()
		cfg.MaxLen = 48 // trim for speed; plans must still cover
		it := table(t, cfg, pop)
		plan, err := it.Select(targets)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		planCovers(t, plan, targets, pop)
		// Accounting invariants.
		var sum time.Duration
		for _, m := range plan.Masks {
			sum += m.Cost
			if m.TargetGain <= 0 {
				t.Fatalf("mask with zero gain selected: %+v", m)
			}
		}
		if !plan.UsedNaive && sum != plan.TotalCost {
			t.Fatalf("cost accounting: Σ=%v total=%v", sum, plan.TotalCost)
		}
		if plan.TotalCost > plan.NaiveCost {
			t.Fatalf("plan must never exceed the naive fallback: %v > %v", plan.TotalCost, plan.NaiveCost)
		}
	}
}

func TestNaiveFallbackTriggers(t *testing.T) {
	// Trim candidate lengths so every available mask drags in a crowd:
	// greedy's best is then worse than n' exact-EPC rounds and the plan
	// must fall back (§5.2 "we should adopt the worst option").
	var pop []epc.EPC
	for v := uint64(0); v < 64; v++ {
		pop = append(pop, epc.FromUint64(v, 8)) // 8-bit EPCs 0x00..0x3F
	}
	cfg := DefaultConfig()
	cfg.MaxLen = 2
	it := table(t, cfg, pop)
	targets := []epc.EPC{pop[0], pop[63]}
	plan, err := it.Select(targets)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.UsedNaive {
		t.Fatalf("expected naive fallback; plan: %+v", plan)
	}
	if len(plan.Masks) != 2 {
		t.Fatalf("naive plan must carry one mask per target, got %d", len(plan.Masks))
	}
	planCovers(t, plan, targets, pop)
}

func TestNaivePlan(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pop, _ := epc.RandomPopulation(rng, 10, 96)
	it := table(t, DefaultConfig(), pop)
	targets := []epc.EPC{pop[1], pop[3], pop[1]} // duplicate folded
	plan := it.NaivePlan(targets)
	if len(plan.Masks) != 2 {
		t.Fatalf("naive masks = %d, want 2", len(plan.Masks))
	}
	for _, m := range plan.Masks {
		if m.Covered != 1 || m.Bitmask.Pointer != 0 || m.Bitmask.Mask.Bits() != 96 {
			t.Fatalf("naive mask malformed: %+v", m)
		}
	}
	if plan.TotalCost != 2*aloha.PaperCostModel().Cost(1) {
		t.Fatalf("naive cost = %v", plan.TotalCost)
	}
}

func TestSelectErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pop, _ := epc.RandomPopulation(rng, 5, 96)
	it := table(t, DefaultConfig(), pop)
	if _, err := it.Select(nil); err == nil {
		t.Fatal("empty targets must error")
	}
	if _, err := it.Select([]epc.EPC{epc.MustParse("00ff00ff00ff00ff00ff00ff")}); !errors.Is(err, ErrUnknownTarget) {
		t.Fatalf("unknown target error = %v", err)
	}
}

func TestIndexTableErrors(t *testing.T) {
	if _, err := NewIndexTable(DefaultConfig(), nil); err == nil {
		t.Fatal("empty population must error")
	}
	mixed := []epc.EPC{epc.FromUint64(1, 8), epc.FromUint64(1, 16)}
	if _, err := NewIndexTable(DefaultConfig(), mixed); err == nil {
		t.Fatal("mixed lengths must error")
	}
	dup := []epc.EPC{epc.FromUint64(1, 8), epc.FromUint64(1, 8)}
	if _, err := NewIndexTable(DefaultConfig(), dup); err == nil {
		t.Fatal("duplicate EPCs must error")
	}
	big := []epc.EPC{epc.New(make([]byte, 32))}
	if _, err := NewIndexTable(DefaultConfig(), big); err == nil {
		t.Fatal("oversize EPCs must error")
	}
}

func TestDuplicateTargetsFolded(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pop, _ := epc.RandomPopulation(rng, 20, 96)
	it := table(t, DefaultConfig(), pop)
	plan, err := it.Select([]epc.EPC{pop[0], pop[0], pop[0]})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(plan.Masks); got != 1 {
		t.Fatalf("duplicate targets should fold to one mask, got %d", got)
	}
	if plan.NaiveCost != aloha.PaperCostModel().Cost(1) {
		t.Fatalf("naive cost must count unique targets: %v", plan.NaiveCost)
	}
}

func TestRandomTieBreakDeterministicWithSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pop, _ := epc.RandomPopulation(rng, 30, 96)
	run := func(seed int64) []Bitmask {
		cfg := DefaultConfig()
		cfg.Rand = rand.New(rand.NewSource(seed))
		it := table(t, cfg, pop)
		plan, err := it.Select(pop[:3])
		if err != nil {
			t.Fatal(err)
		}
		return plan.Bitmasks()
	}
	a, b := run(7), run(7)
	if len(a) != len(b) {
		t.Fatal("same seed must give same plan")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give identical masks")
		}
	}
}

func TestSelectCmdDrivesGen2Selection(t *testing.T) {
	// End-to-end through the air protocol: compile a plan to Select
	// commands, apply them to gen2 tags, and check exactly the covered
	// tags end up SL-asserted.
	rng := rand.New(rand.NewSource(6))
	pop, _ := epc.RandomPopulation(rng, 25, 96)
	it := table(t, DefaultConfig(), pop)
	targets := pop[:4]
	plan, err := it.Select(targets)
	if err != nil {
		t.Fatal(err)
	}
	tags := make([]*gen2.Tag, len(pop))
	for i, c := range pop {
		tags[i] = gen2.NewTag(epc.NewMemory(c))
	}
	for _, pm := range plan.Masks {
		cmd := pm.Bitmask.SelectCmd()
		for _, tag := range tags {
			tag.ApplySelect(cmd)
		}
	}
	for i, tag := range tags {
		wantSL := false
		for _, pm := range plan.Masks {
			if pm.Bitmask.Covers(pop[i]) {
				wantSL = true
			}
		}
		if tag.SL() != wantSL {
			t.Fatalf("tag %s SL=%v, want %v", pop[i], tag.SL(), wantSL)
		}
	}
	// All targets asserted.
	for i := 0; i < 4; i++ {
		if !tags[i].SL() {
			t.Fatalf("target %s not selected", pop[i])
		}
	}
}

func TestWindowMaskAndPack(t *testing.T) {
	w := windowMask(62, 4) // straddles the word boundary
	if w[0] != 0b11 || w[1]>>62 != 0b11 {
		t.Fatalf("straddling window mask wrong: %x %x", w[0], w[1])
	}
	code := epc.MustParse("8000000000000001ff000000")
	pw, ok := packEPC(code)
	if !ok {
		t.Fatal("96-bit EPC must pack")
	}
	if pw[0] != 0x8000000000000001 || pw[1] != 0xff00000000000000>>0 {
		t.Fatalf("packed = %x %x", pw[0], pw[1])
	}
}

func TestBitmapOps(t *testing.T) {
	b := newBitmap(130)
	b.set(0)
	b.set(64)
	b.set(129)
	if !b.get(64) || b.get(63) {
		t.Fatal("get/set")
	}
	if b.popcount() != 3 {
		t.Fatalf("popcount = %d", b.popcount())
	}
	o := newBitmap(130)
	o.set(64)
	if b.andCount(o) != 1 {
		t.Fatal("andCount")
	}
	b.clear(o)
	if b.get(64) || b.popcount() != 2 {
		t.Fatal("clear")
	}
	if b.key() == o.key() {
		t.Fatal("distinct bitmaps must key differently")
	}
}

func TestPointerStrideTrimsCandidates(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pop, _ := epc.RandomPopulation(rng, 20, 96)
	cfg := DefaultConfig()
	cfg.PointerStride = 8
	cfg.MaxLen = 32
	it := table(t, cfg, pop)
	plan, err := it.Select(pop[:3])
	if err != nil {
		t.Fatal(err)
	}
	planCovers(t, plan, pop[:3], pop)
}

func TestSGTINPopulationCollapsesPerProduct(t *testing.T) {
	// A realistic retail shelf: three products, each a run of SGTIN-96
	// serials. All movers of one product share a 58-bit prefix, so the
	// greedy covers them with ONE mask regardless of how many there are.
	var pop []epc.EPC
	for prod := uint64(0); prod < 3; prod++ {
		p, err := epc.SGTINPopulation(703710, 100000+prod, 5, 0, 30)
		if err != nil {
			t.Fatal(err)
		}
		pop = append(pop, p...)
	}
	it := table(t, DefaultConfig(), pop)
	// Targets: 8 serial-scattered movers of product 0.
	targets := []epc.EPC{pop[0], pop[3], pop[7], pop[11], pop[15], pop[19], pop[23], pop[29]}
	plan, err := it.Select(targets)
	if err != nil {
		t.Fatal(err)
	}
	planCovers(t, plan, targets, pop)
	// A couple of masks at most: the greedy exploits the shared prefix
	// (and may even beat the single whole-product mask by splitting on
	// serial bits — e.g. one mask for the odd serials).
	if len(plan.Masks) > 3 {
		t.Fatalf("product-grouped targets need ≤3 masks, got %d", len(plan.Masks))
	}
	// No mask leaks into the other products, and the plan must beat both
	// the whole-product round and the naive per-target plan.
	for _, m := range plan.Masks {
		if m.Covered > 30 {
			t.Fatalf("mask leaked into other products: covers %d", m.Covered)
		}
	}
	// Greedy is an approximation: it may split where the single
	// whole-product round would have been marginally cheaper, but it must
	// stay within the classic ln(n)-ish factor (here: 1.5×).
	wholeProduct := aloha.PaperCostModel().Cost(30)
	if plan.TotalCost > 3*wholeProduct/2 {
		t.Fatalf("plan cost %v strays too far from the whole-product round %v", plan.TotalCost, wholeProduct)
	}
	if plan.TotalCost >= plan.NaiveCost {
		t.Fatalf("plan cost %v must beat naive %v", plan.TotalCost, plan.NaiveCost)
	}
}
