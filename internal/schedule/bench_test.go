package schedule

import (
	"math/rand"
	"testing"

	"tagwatch/internal/epc"
)

func benchTable(b *testing.B, n int) (*IndexTable, []epc.EPC) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	pop, err := epc.RandomPopulation(rng, n, 96)
	if err != nil {
		b.Fatal(err)
	}
	it, err := NewIndexTable(DefaultConfig(), pop)
	if err != nil {
		b.Fatal(err)
	}
	return it, pop
}

func BenchmarkSelect40Tags2Targets(b *testing.B) {
	it, pop := benchTable(b, 40)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := it.Select(pop[:2]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelect400Tags20Targets(b *testing.B) {
	it, pop := benchTable(b, 400)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := it.Select(pop[:20]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNewIndexTable400(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pop, _ := epc.RandomPopulation(rng, 400, 96)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewIndexTable(DefaultConfig(), pop); err != nil {
			b.Fatal(err)
		}
	}
}
