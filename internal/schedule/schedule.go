// Package schedule implements Phase II of Tagwatch: choosing the group of
// Gen2 Select bitmasks that covers all target (mobile or pinned) tags at
// minimum inventory cost (§5).
//
// The problem is the weighted set-cover reduction of §5.2: every candidate
// bitmask S(m, p, l) — a substring of some target's EPC — covers the set
// of tags whose EPC matches m at bit offset p, and costs C(|covered|)
// under the inventory-cost model of §2.2 (each bitmask runs as its own
// AISpec, paying the start-up cost τ₀). The greedy algorithm of §5.3
// repeatedly picks the bitmask with the highest relative gain
// R(S) = |V_S ∧ V| / C(|V_S|).
//
// The index table is precomputed over the current tag population with
// indicator bitmaps packed into uint64 words, so one greedy run over
// hundreds of tags and tens of thousands of candidates costs milliseconds
// (the paper's Fig. 17 budget).
package schedule

import (
	"fmt"
	"math/bits"
	"math/rand"
	"sort"
	"time"

	"tagwatch/internal/aloha"
	"tagwatch/internal/epc"
	"tagwatch/internal/gen2"
)

// Bitmask is the paper's S(m, p, l): a mask compared against the EPC code
// at bit offset Pointer. (The Gen2 Select pointer additionally skips the
// StoredCRC+StoredPC header; SelectCmd adds that.)
type Bitmask struct {
	Mask    epc.EPC
	Pointer int
}

// Covers reports whether the bitmask covers the given EPC code.
func (b Bitmask) Covers(code epc.EPC) bool {
	return code.MatchBits(b.Pointer, b.Mask)
}

// SelectCmd converts the bitmask into the Gen2 Select command that
// implements it on the air protocol.
func (b Bitmask) SelectCmd() gen2.SelectCmd {
	return gen2.SelectCmd{
		Target:  gen2.TargetSL,
		Action:  gen2.ActionAssertNothing,
		MemBank: epc.BankEPC,
		Pointer: epc.EPCWordOffset + b.Pointer,
		Mask:    b.Mask,
	}
}

// String renders the paper's S(mask, pointer, length) notation.
func (b Bitmask) String() string {
	return fmt.Sprintf("S(%s, %d, %d)", b.Mask, b.Pointer, b.Mask.Bits())
}

// Config tunes candidate enumeration.
type Config struct {
	// Cost is the inventory-cost model used to price bitmasks.
	Cost aloha.CostModel
	// MaxLen caps candidate mask lengths; 0 means the full EPC length.
	// The full space is n'·L(L+1)/2 candidates (§5.2); trimming lengths
	// trades optimality for preprocessing time on very large populations.
	MaxLen int
	// PointerStride enumerates candidate pointers in steps (1 = every bit
	// offset, the paper's full space).
	PointerStride int
	// Rand resolves gain ties ("a draw can be resolved by random
	// selection", §5.3); nil picks the first maximum deterministically.
	Rand *rand.Rand
}

// DefaultConfig prices with the paper's measured cost model and searches
// the full candidate space.
func DefaultConfig() Config {
	return Config{Cost: aloha.PaperCostModel(), PointerStride: 1}
}

// words packs an EPC code into 64-bit words, MSB first, zero-padded.
type words [2]uint64

func packEPC(code epc.EPC) (words, bool) {
	if code.Bits() > 128 {
		return words{}, false
	}
	var w words
	for i, b := range code.Bytes() {
		w[i/8] |= uint64(b) << (56 - 8*(i%8))
	}
	return w, true
}

// windowMask returns words with ones at bit positions [p, p+l).
func windowMask(p, l int) words {
	var m words
	for i := p; i < p+l; i++ {
		m[i/64] |= 1 << (63 - i%64)
	}
	return m
}

// bitmap is an indicator over the population, packed 64 tags per word.
type bitmap []uint64

func newBitmap(n int) bitmap { return make(bitmap, (n+63)/64) }

func (b bitmap) set(i int)      { b[i/64] |= 1 << (i % 64) }
func (b bitmap) get(i int) bool { return b[i/64]>>(i%64)&1 == 1 }

func (b bitmap) popcount() int {
	var c int
	for _, w := range b {
		c += bits.OnesCount64(w)
	}
	return c
}

// andCount returns |b ∧ o|.
func (b bitmap) andCount(o bitmap) int {
	var c int
	for i := range b {
		c += bits.OnesCount64(b[i] & o[i])
	}
	return c
}

// clear removes o's bits from b.
func (b bitmap) clear(o bitmap) {
	for i := range b {
		b[i] &^= o[i]
	}
}

func (b bitmap) key() string {
	buf := make([]byte, 8*len(b))
	for i, w := range b {
		for j := 0; j < 8; j++ {
			buf[8*i+j] = byte(w >> (8 * j))
		}
	}
	return string(buf)
}

// row is one candidate bitmask with its population indicator.
type row struct {
	mask    Bitmask
	covered bitmap
	count   int // |covered|, cached
}

// IndexTable is the §5.3 pre-built table: the current population plus fast
// coverage evaluation. Build one per population snapshot; it answers any
// number of Select calls (target sets) against that snapshot.
type IndexTable struct {
	cfg    Config
	tags   []epc.EPC
	index  map[epc.EPC]int
	packed []words
	bits   int // common EPC bit length
}

// NewIndexTable builds the table over the current tag population. All tags
// must share one EPC bit length (mixed populations are not meaningfully
// maskable with a common pointer space).
func NewIndexTable(cfg Config, population []epc.EPC) (*IndexTable, error) {
	if len(population) == 0 {
		return nil, fmt.Errorf("schedule: empty population")
	}
	if cfg.Cost == (aloha.CostModel{}) {
		cfg.Cost = aloha.PaperCostModel()
	}
	if cfg.PointerStride <= 0 {
		cfg.PointerStride = 1
	}
	t := &IndexTable{
		cfg:    cfg,
		tags:   append([]epc.EPC(nil), population...),
		index:  make(map[epc.EPC]int, len(population)),
		packed: make([]words, len(population)),
		bits:   population[0].Bits(),
	}
	sort.Slice(t.tags, func(i, j int) bool { return t.tags[i].String() < t.tags[j].String() })
	for i, code := range t.tags {
		if code.Bits() != t.bits {
			return nil, fmt.Errorf("schedule: mixed EPC lengths %d and %d", t.bits, code.Bits())
		}
		if _, dup := t.index[code]; dup {
			return nil, fmt.Errorf("schedule: duplicate EPC %s", code)
		}
		w, ok := packEPC(code)
		if !ok {
			return nil, fmt.Errorf("schedule: EPC %s exceeds 128 bits", code)
		}
		t.index[code] = i
		t.packed[i] = w
	}
	return t, nil
}

// Size returns the population size.
func (t *IndexTable) Size() int { return len(t.tags) }

// Population returns the (sorted) population snapshot.
func (t *IndexTable) Population() []epc.EPC { return t.tags }

// buildRows enumerates the candidate bitmasks derived from the targets:
// every substring S(m, p, l) of a target EPC, deduplicated by coverage.
func (t *IndexTable) buildRows(targets []int) []row {
	maxLen := t.cfg.MaxLen
	if maxLen <= 0 || maxLen > t.bits {
		maxLen = t.bits
	}
	seen := make(map[string]struct{})
	var rows []row
	for _, ti := range targets {
		tw := t.packed[ti]
		for l := 1; l <= maxLen; l++ {
			for p := 0; p+l <= t.bits; p += t.cfg.PointerStride {
				wm := windowMask(p, l)
				cov := newBitmap(len(t.tags))
				count := 0
				for i, pw := range t.packed {
					if (pw[0]^tw[0])&wm[0] == 0 && (pw[1]^tw[1])&wm[1] == 0 {
						cov.set(i)
						count++
					}
				}
				k := cov.key()
				if _, dup := seen[k]; dup {
					continue
				}
				seen[k] = struct{}{}
				mask, err := t.tags[ti].Slice(p, l)
				if err != nil {
					continue
				}
				rows = append(rows, row{
					mask:    Bitmask{Mask: mask, Pointer: p},
					covered: cov,
					count:   count,
				})
			}
		}
	}
	return rows
}

// PlanMask is one selected bitmask with its coverage accounting.
type PlanMask struct {
	Bitmask Bitmask
	// Covered is how many tags (targets and collateral) the mask's
	// selective round will read.
	Covered int
	// TargetGain is how many then-uncovered targets the mask contributed.
	TargetGain int
	// Cost is C(Covered).
	Cost time.Duration
}

// Plan is the outcome of bitmask selection.
type Plan struct {
	Masks []PlanMask
	// TotalCost is Σ C(|S_i|) over the chosen masks.
	TotalCost time.Duration
	// NaiveCost is the §5.2 worst case: one exact-EPC round per target.
	NaiveCost time.Duration
	// UsedNaive reports that the greedy result was more expensive than the
	// worst case and the naive plan was adopted instead.
	UsedNaive bool
	// Collateral is the number of distinct non-target tags covered.
	Collateral int
}

// Bitmasks returns just the masks, in selection order.
func (p Plan) Bitmasks() []Bitmask {
	out := make([]Bitmask, len(p.Masks))
	for i, m := range p.Masks {
		out[i] = m.Bitmask
	}
	return out
}

// ErrUnknownTarget is wrapped when a target is not in the population.
var ErrUnknownTarget = fmt.Errorf("schedule: target not in population")

// Select runs the greedy set-cover search of §5.3 for the given targets
// and returns the chosen plan. Targets must be members of the population.
func (t *IndexTable) Select(targets []epc.EPC) (Plan, error) {
	if len(targets) == 0 {
		return Plan{}, fmt.Errorf("schedule: no targets")
	}
	idxs := make([]int, 0, len(targets))
	seen := make(map[int]struct{}, len(targets))
	for _, code := range targets {
		i, ok := t.index[code]
		if !ok {
			return Plan{}, fmt.Errorf("%w: %s", ErrUnknownTarget, code)
		}
		if _, dup := seen[i]; dup {
			continue
		}
		seen[i] = struct{}{}
		idxs = append(idxs, i)
	}

	rows := t.buildRows(idxs)
	targetSet := newBitmap(len(t.tags))
	for _, i := range idxs {
		targetSet.set(i)
	}

	// Greedy iterations over the input indicator V.
	v := append(bitmap(nil), targetSet...)
	var plan Plan
	coveredAll := newBitmap(len(t.tags))
	for v.popcount() > 0 {
		bestR := -1.0
		var best []int
		for ri := range rows {
			gain := rows[ri].covered.andCount(v)
			if gain == 0 {
				continue
			}
			r := float64(gain) / float64(t.cfg.Cost.Cost(rows[ri].count))
			switch {
			case r > bestR:
				bestR = r
				best = best[:0]
				best = append(best, ri)
			case r == bestR:
				best = append(best, ri)
			}
		}
		if len(best) == 0 {
			return Plan{}, fmt.Errorf("schedule: uncoverable targets remain (internal invariant violated)")
		}
		pick := best[0]
		if t.cfg.Rand != nil && len(best) > 1 {
			pick = best[t.cfg.Rand.Intn(len(best))]
		}
		r := rows[pick]
		plan.Masks = append(plan.Masks, PlanMask{
			Bitmask:    r.mask,
			Covered:    r.count,
			TargetGain: r.covered.andCount(v),
			Cost:       t.cfg.Cost.Cost(r.count),
		})
		plan.TotalCost += t.cfg.Cost.Cost(r.count)
		for i := range coveredAll {
			coveredAll[i] |= r.covered[i]
		}
		v.clear(r.covered)
	}
	plan.Collateral = coveredAll.popcount() - func() int {
		var c int
		for i := range coveredAll {
			c += bits.OnesCount64(coveredAll[i] & targetSet[i])
		}
		return c
	}()

	// Worst-case fallback (§5.2): n' exact-EPC rounds.
	plan.NaiveCost = time.Duration(len(idxs)) * t.cfg.Cost.Cost(1)
	if plan.TotalCost > plan.NaiveCost {
		naive := t.NaivePlan(targets)
		naive.NaiveCost = plan.NaiveCost
		naive.UsedNaive = true
		return naive, nil
	}
	return plan, nil
}

// NaivePlan builds the baseline plan that uses each target's full EPC as
// its own bitmask — the "naive rate-adaptive solution" compared throughout
// §7.
func (t *IndexTable) NaivePlan(targets []epc.EPC) Plan {
	var plan Plan
	seen := make(map[epc.EPC]struct{}, len(targets))
	for _, code := range targets {
		if _, dup := seen[code]; dup {
			continue
		}
		seen[code] = struct{}{}
		cost := t.cfg.Cost.Cost(1)
		plan.Masks = append(plan.Masks, PlanMask{
			Bitmask:    Bitmask{Mask: code, Pointer: 0},
			Covered:    1,
			TargetGain: 1,
			Cost:       cost,
		})
		plan.TotalCost += cost
	}
	plan.NaiveCost = plan.TotalCost
	return plan
}
