package stats

import (
	"errors"
	"math"
)

// ErrSingular is returned when a least-squares system has no unique
// solution (fewer independent observations than parameters).
var ErrSingular = errors.New("stats: singular least-squares system")

// LeastSquares2 solves min ||a*x1 + b*x2 - y||² for the two coefficients
// (a, b) given basis columns x1, x2 and observations y. The paper uses
// exactly this to calibrate C(n) = τ₀·1 + τ̄·(n·e·ln n) from measured
// inventory times (§2.3: "we utilize the least-squares algorithm to
// estimate the two unknown parameters, namely τ₀ (19ms) and τ̄ (0.18ms)").
func LeastSquares2(x1, x2, y []float64) (a, b float64, err error) {
	n := len(y)
	if len(x1) != n || len(x2) != n {
		return 0, 0, errors.New("stats: mismatched column lengths")
	}
	if n < 2 {
		return 0, 0, ErrSingular
	}
	// Normal equations for the 2x2 system.
	var s11, s12, s22, sy1, sy2 float64
	for i := 0; i < n; i++ {
		s11 += x1[i] * x1[i]
		s12 += x1[i] * x2[i]
		s22 += x2[i] * x2[i]
		sy1 += x1[i] * y[i]
		sy2 += x2[i] * y[i]
	}
	det := s11*s22 - s12*s12
	if math.Abs(det) < 1e-12 {
		return 0, 0, ErrSingular
	}
	a = (sy1*s22 - sy2*s12) / det
	b = (sy2*s11 - sy1*s12) / det
	return a, b, nil
}

// LinearFit fits y = a + b*x by ordinary least squares and returns the
// intercept a and slope b.
func LinearFit(x, y []float64) (a, b float64, err error) {
	ones := make([]float64, len(x))
	for i := range ones {
		ones[i] = 1
	}
	return LeastSquares2(ones, x, y)
}

// RMSE returns the root-mean-square error between predictions and
// observations.
func RMSE(pred, obs []float64) float64 {
	if len(pred) != len(obs) || len(pred) == 0 {
		return math.NaN()
	}
	var s float64
	for i := range pred {
		d := pred[i] - obs[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(pred)))
}
