// Package stats provides the small statistical toolkit the evaluation
// harness needs: percentiles and CDFs (Figs. 4, 17, 18), ROC curves
// (Fig. 12), histograms (Fig. 8), and linear least squares for calibrating
// the inventory-cost model's τ₀ and τ̄ (§2.3).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs, or NaN for an
// empty slice.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Percentile returns the p-quantile (p in [0,1]) of xs using linear
// interpolation between order statistics. It does not modify xs.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	pos := p * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median is Percentile(xs, 0.5).
func Median(xs []float64) float64 { return Percentile(xs, 0.5) }

// Summary bundles the descriptive statistics the experiment harness prints
// for each measured series.
type Summary struct {
	N             int
	Mean, Std     float64
	Min, Max      float64
	P10, P50, P90 float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{N: 0, Mean: math.NaN(), Std: math.NaN(), Min: math.NaN(), Max: math.NaN(), P10: math.NaN(), P50: math.NaN(), P90: math.NaN()}
	}
	s := Summary{
		N:    len(xs),
		Mean: Mean(xs),
		Std:  StdDev(xs),
		Min:  xs[0],
		Max:  xs[0],
		P10:  Percentile(xs, 0.10),
		P50:  Percentile(xs, 0.50),
		P90:  Percentile(xs, 0.90),
	}
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	return s
}

// String renders the summary as one table row.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f std=%.3f min=%.3f p10=%.3f p50=%.3f p90=%.3f max=%.3f",
		s.N, s.Mean, s.Std, s.Min, s.P10, s.P50, s.P90, s.Max)
}

// CDFPoint is one step of an empirical CDF.
type CDFPoint struct {
	X float64 // value
	P float64 // P(value <= X)
}

// CDF computes the empirical CDF of xs as an ascending step function.
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	out := make([]CDFPoint, 0, len(s))
	n := float64(len(s))
	for i := 0; i < len(s); i++ {
		// Collapse duplicate X values into their final (highest) P.
		if i+1 < len(s) && s[i+1] == s[i] {
			continue
		}
		out = append(out, CDFPoint{X: s[i], P: float64(i+1) / n})
	}
	return out
}

// CDFAt evaluates an empirical CDF of xs at x: the fraction of samples <= x.
func CDFAt(xs []float64, x float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var c int
	for _, v := range xs {
		if v <= x {
			c++
		}
	}
	return float64(c) / float64(len(xs))
}

// Histogram bins xs into `bins` equal-width buckets spanning [min, max].
// It returns the bucket left edges and counts. Used to render the Fig. 8
// phase-mode histogram.
func Histogram(xs []float64, min, max float64, bins int) (edges []float64, counts []int) {
	if bins <= 0 || max <= min {
		return nil, nil
	}
	edges = make([]float64, bins)
	counts = make([]int, bins)
	w := (max - min) / float64(bins)
	for i := range edges {
		edges[i] = min + float64(i)*w
	}
	for _, x := range xs {
		if x < min || x > max {
			continue
		}
		i := int((x - min) / w)
		if i >= bins {
			i = bins - 1
		}
		counts[i]++
	}
	return edges, counts
}
