package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !almost(m, 5, 1e-12) {
		t.Fatalf("Mean = %v, want 5", m)
	}
	if s := StdDev(xs); !almost(s, 2, 1e-12) {
		t.Fatalf("StdDev = %v, want 2", s)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(StdDev(nil)) {
		t.Fatal("empty input must yield NaN")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {-1, 1}, {2, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almost(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile([]float64{1, 2}, 0.5); !almost(got, 1.5, 1e-12) {
		t.Errorf("interpolated median = %v, want 1.5", got)
	}
	if !math.IsNaN(Percentile(nil, 0.5)) {
		t.Fatal("empty percentile must be NaN")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Percentile must not reorder its input")
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	s := Summarize(xs)
	if s.N != 10 || !almost(s.Mean, 5.5, 1e-12) || !almost(s.Min, 1, 0) || !almost(s.Max, 10, 0) {
		t.Fatalf("bad summary: %+v", s)
	}
	if !almost(s.P50, 5.5, 1e-12) {
		t.Fatalf("P50 = %v", s.P50)
	}
	if s.String() == "" {
		t.Fatal("String must render")
	}
	if e := Summarize(nil); e.N != 0 || !math.IsNaN(e.Mean) {
		t.Fatal("empty summary must be NaN-filled")
	}
}

func TestCDF(t *testing.T) {
	xs := []float64{3, 1, 2, 2}
	c := CDF(xs)
	want := []CDFPoint{{1, 0.25}, {2, 0.75}, {3, 1}}
	if len(c) != len(want) {
		t.Fatalf("CDF len = %d, want %d (%v)", len(c), len(want), c)
	}
	for i := range want {
		if !almost(c[i].X, want[i].X, 0) || !almost(c[i].P, want[i].P, 1e-12) {
			t.Errorf("CDF[%d] = %+v, want %+v", i, c[i], want[i])
		}
	}
	if CDF(nil) != nil {
		t.Fatal("empty CDF must be nil")
	}
}

func TestCDFAt(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := CDFAt(xs, 2.5); !almost(got, 0.5, 1e-12) {
		t.Fatalf("CDFAt(2.5) = %v, want 0.5", got)
	}
	if got := CDFAt(xs, 0); got != 0 {
		t.Fatalf("CDFAt(0) = %v, want 0", got)
	}
	if got := CDFAt(xs, 9); got != 1 {
		t.Fatalf("CDFAt(9) = %v, want 1", got)
	}
	if !math.IsNaN(CDFAt(nil, 1)) {
		t.Fatal("empty CDFAt must be NaN")
	}
}

func TestCDFMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		xs := make([]float64, 50)
		for i := range xs {
			xs[i] = r.NormFloat64()
		}
		c := CDF(xs)
		for i := 1; i < len(c); i++ {
			if c[i].X <= c[i-1].X || c[i].P < c[i-1].P {
				return false
			}
		}
		return c[len(c)-1].P == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0.1, 0.2, 0.6, 0.9, 1.0, -5, 7}
	edges, counts := Histogram(xs, 0, 1, 2)
	if len(edges) != 2 || len(counts) != 2 {
		t.Fatalf("histogram shape: %v %v", edges, counts)
	}
	if counts[0] != 2 || counts[1] != 3 {
		t.Fatalf("counts = %v, want [2 3]", counts)
	}
	if e, c := Histogram(xs, 1, 0, 2); e != nil || c != nil {
		t.Fatal("inverted range must return nil")
	}
	if e, c := Histogram(xs, 0, 1, 0); e != nil || c != nil {
		t.Fatal("zero bins must return nil")
	}
}

func TestROCPerfectDetector(t *testing.T) {
	pos := []float64{10, 11, 12}
	neg := []float64{1, 2, 3}
	curve := ROC(pos, neg)
	if auc := AUC(curve); !almost(auc, 1, 1e-12) {
		t.Fatalf("perfect AUC = %v, want 1", auc)
	}
	if tpr := TPRAtFPR(curve, 0); !almost(tpr, 1, 1e-12) {
		t.Fatalf("TPR@FPR0 = %v, want 1", tpr)
	}
}

func TestROCRandomDetector(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	pos := make([]float64, 4000)
	neg := make([]float64, 4000)
	for i := range pos {
		pos[i] = r.Float64()
		neg[i] = r.Float64()
	}
	if auc := AUC(ROC(pos, neg)); !almost(auc, 0.5, 0.03) {
		t.Fatalf("random AUC = %v, want ~0.5", auc)
	}
}

func TestROCEdges(t *testing.T) {
	if ROC(nil, []float64{1}) != nil || ROC([]float64{1}, nil) != nil {
		t.Fatal("empty classes must yield nil curve")
	}
	curve := ROC([]float64{5}, []float64{1})
	if curve[0].FPR != 0 || curve[0].TPR != 0 {
		t.Fatalf("curve must start at origin: %+v", curve[0])
	}
	last := curve[len(curve)-1]
	if last.FPR != 1 || last.TPR != 1 {
		t.Fatalf("curve must end at (1,1): %+v", last)
	}
	if AUC(nil) != 0 {
		t.Fatal("empty AUC must be 0")
	}
}

func TestROCMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pos := make([]float64, 30)
		neg := make([]float64, 30)
		for i := range pos {
			pos[i] = r.NormFloat64() + 1
			neg[i] = r.NormFloat64()
		}
		c := ROC(pos, neg)
		for i := 1; i < len(c); i++ {
			if c[i].FPR < c[i-1].FPR || c[i].TPR < c[i-1].TPR {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLeastSquares2RecoversCostModel(t *testing.T) {
	// Synthesize C(n) = τ0 + τ̄·(n e ln n) with τ0=19ms, τ̄=0.18ms and
	// verify recovery — exactly the paper's calibration.
	const tau0, tau = 19.0, 0.18
	var ones, basis, y []float64
	for n := 2; n <= 40; n++ {
		x := float64(n) * math.E * math.Log(float64(n))
		ones = append(ones, 1)
		basis = append(basis, x)
		y = append(y, tau0+tau*x)
	}
	a, b, err := LeastSquares2(ones, basis, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(a, tau0, 1e-9) || !almost(b, tau, 1e-12) {
		t.Fatalf("recovered (%v, %v), want (19, 0.18)", a, b)
	}
}

func TestLeastSquares2Noisy(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	var x1, x2, y []float64
	for i := 0; i < 500; i++ {
		u, v := r.Float64()*10, r.Float64()*10
		x1 = append(x1, u)
		x2 = append(x2, v)
		y = append(y, 3*u-2*v+r.NormFloat64()*0.01)
	}
	a, b, err := LeastSquares2(x1, x2, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(a, 3, 0.01) || !almost(b, -2, 0.01) {
		t.Fatalf("got (%v,%v), want (3,-2)", a, b)
	}
}

func TestLeastSquares2Errors(t *testing.T) {
	if _, _, err := LeastSquares2([]float64{1}, []float64{1, 2}, []float64{1, 2}); err == nil {
		t.Fatal("mismatched lengths must error")
	}
	if _, _, err := LeastSquares2([]float64{1}, []float64{1}, []float64{1}); err == nil {
		t.Fatal("underdetermined system must error")
	}
	// Collinear columns -> singular.
	if _, _, err := LeastSquares2([]float64{1, 2, 3}, []float64{2, 4, 6}, []float64{1, 2, 3}); err == nil {
		t.Fatal("collinear columns must error")
	}
}

func TestLinearFit(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{1, 3, 5, 7}
	a, b, err := LinearFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(a, 1, 1e-9) || !almost(b, 2, 1e-9) {
		t.Fatalf("LinearFit = (%v, %v), want (1,2)", a, b)
	}
}

func TestRMSE(t *testing.T) {
	if got := RMSE([]float64{1, 2}, []float64{1, 4}); !almost(got, math.Sqrt(2), 1e-12) {
		t.Fatalf("RMSE = %v", got)
	}
	if !math.IsNaN(RMSE(nil, nil)) || !math.IsNaN(RMSE([]float64{1}, nil)) {
		t.Fatal("degenerate RMSE must be NaN")
	}
}
