package stats

import "sort"

// ROCPoint is one operating point of a detector: the false-positive and
// true-positive rates achieved at some threshold.
type ROCPoint struct {
	Threshold float64
	FPR, TPR  float64
}

// ROC computes a receiver operating characteristic from detector scores.
// Higher score means "more likely moving" (positive). posScores are scores
// of truly-moving samples; negScores of truly-stationary ones. The returned
// curve is ordered by ascending FPR and always includes the (0,0) and (1,1)
// endpoints.
func ROC(posScores, negScores []float64) []ROCPoint {
	if len(posScores) == 0 || len(negScores) == 0 {
		return nil
	}
	// Candidate thresholds: every distinct score.
	th := make([]float64, 0, len(posScores)+len(negScores))
	th = append(th, posScores...)
	th = append(th, negScores...)
	sort.Float64s(th)
	uniq := th[:0]
	for i, v := range th {
		if i == 0 || v != th[i-1] {
			uniq = append(uniq, v)
		}
	}
	ps := append([]float64(nil), posScores...)
	ns := append([]float64(nil), negScores...)
	sort.Float64s(ps)
	sort.Float64s(ns)
	countAbove := func(sorted []float64, t float64) int {
		// samples with score >= t are classified positive
		i := sort.SearchFloat64s(sorted, t)
		return len(sorted) - i
	}
	curve := make([]ROCPoint, 0, len(uniq)+2)
	curve = append(curve, ROCPoint{Threshold: uniq[len(uniq)-1] + 1, FPR: 0, TPR: 0})
	for i := len(uniq) - 1; i >= 0; i-- {
		t := uniq[i]
		curve = append(curve, ROCPoint{
			Threshold: t,
			FPR:       float64(countAbove(ns, t)) / float64(len(ns)),
			TPR:       float64(countAbove(ps, t)) / float64(len(ps)),
		})
	}
	if last := curve[len(curve)-1]; last.FPR != 1 || last.TPR != 1 {
		curve = append(curve, ROCPoint{Threshold: uniq[0] - 1, FPR: 1, TPR: 1})
	}
	return curve
}

// AUC integrates a ROC curve (ordered by ascending FPR) with the trapezoid
// rule. A perfect detector scores 1.0; a random one 0.5.
func AUC(curve []ROCPoint) float64 {
	if len(curve) < 2 {
		return 0
	}
	var area float64
	for i := 1; i < len(curve); i++ {
		dx := curve[i].FPR - curve[i-1].FPR
		area += dx * (curve[i].TPR + curve[i-1].TPR) / 2
	}
	return area
}

// TPRAtFPR returns the best true-positive rate achievable at or below the
// given false-positive rate — how the paper quotes Fig. 12 ("≥0.95 TPR
// while ≤0.1 FPR").
func TPRAtFPR(curve []ROCPoint, maxFPR float64) float64 {
	best := 0.0
	for _, p := range curve {
		if p.FPR <= maxFPR && p.TPR > best {
			best = p.TPR
		}
	}
	return best
}
