package replay

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	"tagwatch/internal/scenario"
)

// shrunkRush is retail-rush cut down to a few virtual minutes so the
// integration test replays it at 100x in about two wall seconds.
func shrunkRush(t *testing.T) scenario.Spec {
	t.Helper()
	spec, err := scenario.Lookup("retail-rush")
	if err != nil {
		t.Fatal(err)
	}
	spec.Duration = 3 * time.Minute
	spec.Population = 150
	spec.TransitTime = 20 * time.Second
	if err := spec.Validate(); err != nil {
		t.Fatalf("shrunk spec invalid: %v", err)
	}
	return spec
}

func TestReplayThroughFleet(t *testing.T) {
	cfg := Config{Spec: shrunkRush(t), Seed: 11, Speed: 100, QuarantineK: 2}
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Fleet.TagsSeen == 0 {
		t.Fatal("no tags reached the registry")
	}
	if rep.Fleet.Observations == 0 || rep.Fleet.Observations > uint64(rep.TimelineReadings) {
		t.Fatalf("observations %d outside (0, %d]", rep.Fleet.Observations, rep.TimelineReadings)
	}
	// Two gates on the route: tags crossing entry then exit must hand off.
	if rep.Fleet.Handoffs == 0 {
		t.Fatal("no handoffs despite a two-gate route")
	}
	// QuarantineK=2 means every never-seen EPC is held at least once.
	if rep.Fleet.QuarantineHeld == 0 || rep.Fleet.QuarantineConfirmed == 0 {
		t.Fatalf("quarantine counters flat: held=%d confirmed=%d",
			rep.Fleet.QuarantineHeld, rep.Fleet.QuarantineConfirmed)
	}
	// The bus carried handoffs plus one cycle summary per event.
	if rep.Fleet.BusPublished < uint64(rep.TimelineEvents) {
		t.Fatalf("bus published %d < %d events", rep.Fleet.BusPublished, rep.TimelineEvents)
	}
	if rep.Fingerprint == "" || rep.TimelineDigest == "" {
		t.Fatal("missing fingerprint/digest")
	}
	var gateReadings uint64
	for _, g := range rep.Gates {
		gateReadings += g.Readings
	}
	// Ingests count every delivery; the registry's observation counter
	// excludes sightings refused while in quarantine.
	if gateReadings != rep.Fleet.Observations+rep.Fleet.QuarantineRefused {
		t.Fatalf("per-gate readings %d != observations %d + refused %d",
			gateReadings, rep.Fleet.Observations, rep.Fleet.QuarantineRefused)
	}
	// Histogram is cumulative and ends at the full seen population.
	last := 0
	for _, b := range rep.ReadRate {
		if b.Count < last {
			t.Fatalf("histogram not monotone: %+v", rep.ReadRate)
		}
		last = b.Count
	}
	if rep.Wall.ElapsedMS <= 0 {
		t.Fatal("wall elapsed not recorded")
	}
	// The report must round-trip as JSON (replayd's output format).
	if _, err := json.Marshal(rep); err != nil {
		t.Fatalf("report not serialisable: %v", err)
	}
}

func TestReplayDeterministicFingerprint(t *testing.T) {
	// Unthrottled on purpose: wall-clock pacing must not leak into the
	// deterministic portion of the report.
	cfg := Config{Spec: shrunkRush(t), Seed: 7, QuarantineK: 2}
	a, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint != b.Fingerprint {
		t.Fatalf("same-seed fingerprints differ:\n%s\n%s", a.Fingerprint, b.Fingerprint)
	}
	cfg.Seed = 8
	c, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Fingerprint == a.Fingerprint {
		t.Fatal("different seeds produced the same fingerprint")
	}
}

func TestReplayAbortsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// Throttled so the run cannot finish before noticing cancellation.
	_, err := Run(ctx, Config{Spec: shrunkRush(t), Seed: 1, Speed: 1})
	if err == nil {
		t.Fatal("cancelled replay must fail")
	}
}

func TestReplayRejectsBadSpec(t *testing.T) {
	spec := shrunkRush(t)
	spec.Duration = 0
	if _, err := Run(context.Background(), Config{Spec: spec, Seed: 1}); err == nil {
		t.Fatal("degenerate spec must be rejected before any fleet is built")
	}
}
