package replay

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"tagwatch/internal/fleet"
	"tagwatch/internal/scenario"
)

// Feed delivers compiled events [from, to) through per-gate ingests
// registered on m, paced at speed virtual seconds per wall second
// (0 = unthrottled). The pace anchors on the segment's first event, so
// a resumed segment (a promoted standby mid-drill, a gauntlet case
// continuing past a fault) runs at full rate instead of sleeping
// through the already-delivered prefix. Delivery is the same path Run
// uses, so a fed segment is bit-identical to the equivalent slice of a
// plain replay.
func Feed(ctx context.Context, m *fleet.Manager, compiled *scenario.Compiled, from, to int, speed float64) error {
	return FeedSkewed(ctx, m, compiled, from, to, speed, nil)
}

// FeedSkewed is Feed with per-gate observation clock skew: skew[i] is
// added to every timestamp gate i stamps on its observations — readers
// whose clocks disagree by a fixed offset — without moving any event's
// place in the delivery order. A nil or short slice means zero skew for
// the uncovered gates. Registry timestamps shift accordingly; the set
// of tags observed does not, which is exactly the invariant the
// gauntlet's skew oracle checks.
func FeedSkewed(ctx context.Context, m *fleet.Manager, compiled *scenario.Compiled, from, to int, speed float64, skew []time.Duration) error {
	ingests := make([]*fleet.Ingest, len(compiled.Spec.Gates))
	for i, g := range compiled.Spec.Gates {
		ingests[i] = m.NewIngest(g.Reader)
	}
	pace := newPacer(speed, compiled.Events[from].At)
	for i := from; i < to; i++ {
		ev := &compiled.Events[i]
		if err := pace.wait(ctx, ev.At); err != nil {
			return fmt.Errorf("replay: feed aborted at event %d: %w", i, err)
		}
		var off time.Duration
		if int(ev.Gate) < len(skew) {
			off = skew[ev.Gate]
		}
		deliverEvent(compiled, ingests[ev.Gate], ev, off)
	}
	return nil
}

// RegistryFingerprint hashes the registry's sorted snapshot — the
// deterministic identity the drill and the gauntlet compare across
// runs: two registries with the same fingerprint hold byte-identical
// tag state.
func RegistryFingerprint(reg *fleet.Registry) (string, error) {
	return SnapshotFingerprint(reg.Snapshot())
}

// SnapshotFingerprint hashes any sorted tag snapshot with the identical
// encoding RegistryFingerprint uses, so a mirror built from the event
// stream (the edge tier) can be compared byte-for-byte against the
// registry it follows.
func SnapshotFingerprint(tags []fleet.TagState) (string, error) {
	b, err := json.Marshal(tags)
	if err != nil {
		return "", fmt.Errorf("replay: snapshot fingerprint: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}
