// Package replay streams a compiled scenario timeline through a live
// fleet at a wall-clock speed multiple — the engine behind cmd/replayd.
//
// The runner compiles a scenario.Spec into its deterministic timeline,
// builds a real fleet.Manager (guard layer and all), registers one
// synthetic ingest per gate, and delivers every compiled reading through
// the same registry path a supervised LLRP reader would use. Virtual
// time does the bookkeeping: observations carry timestamps on a fixed
// epoch, so quarantine clocks, eviction order, and handoff records are
// identical run to run, while the wall clock only paces delivery
// (`Speed` virtual seconds per wall second; 0 replays as fast as the
// pipeline drains).
//
// The outcome is a Report whose deterministic portion — everything
// except the Wall section — hashes to a stable fingerprint: two runs of
// the same (spec, seed) must produce byte-identical reports modulo
// wall-clock timing, which is exactly what the CI replay-smoke job
// asserts.
package replay

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"time"

	"tagwatch/internal/core"
	"tagwatch/internal/fleet"
	"tagwatch/internal/scenario"
)

// Config tunes one replay run.
type Config struct {
	// Spec is the scenario to compile and replay.
	Spec scenario.Spec
	// Seed drives every stochastic draw in the compiled timeline.
	Seed int64
	// Speed is the virtual-to-wall time multiple: 100 replays one virtual
	// hour in 36 wall seconds. Zero replays unthrottled; negative or
	// non-finite values are rejected.
	Speed float64
	// QuarantineK gates never-seen EPCs exactly as a production fleet
	// would (k sightings within the virtual quarantine window before
	// admission). Values <= 1 disable quarantine.
	QuarantineK int
	// MaxTags caps the merged registry (0 = unbounded).
	MaxTags int
}

// Bucket is one cumulative histogram bin: Count tags were read at most
// Le times.
type Bucket struct {
	Le    float64 `json:"le"`
	Count int     `json:"count"`
}

// FleetCounters is the registry/guard outcome of the run — the numbers
// that prove the pipeline actually processed the workload.
type FleetCounters struct {
	TagsSeen            int    `json:"tags_seen"`
	Observations        uint64 `json:"observations"`
	Handoffs            uint64 `json:"handoffs"`
	Evicted             uint64 `json:"evicted"`
	QuarantineRefused   uint64 `json:"quarantine_refused"`
	QuarantineHeld      uint64 `json:"quarantine_held"`
	QuarantineConfirmed uint64 `json:"quarantine_confirmed"`
	BusPublished        uint64 `json:"bus_published"`
}

// GateReport is one ingest's share of the run.
type GateReport struct {
	Reader   string `json:"reader"`
	Readings uint64 `json:"readings"`
	Cycles   int    `json:"cycles"`
}

// Wall is the only non-deterministic section of a report: wall-clock
// timing, excluded from the fingerprint.
type Wall struct {
	Start     time.Time `json:"start"`
	End       time.Time `json:"end"`
	ElapsedMS int64     `json:"elapsed_ms"`
	// EffectiveSpeed is virtual duration over wall elapsed — how fast the
	// run actually went (>= Speed when the pipeline kept up).
	EffectiveSpeed float64 `json:"effective_speed"`
}

// Report is the run summary replayd emits as JSON.
type Report struct {
	Scenario        string        `json:"scenario"`
	Seed            int64         `json:"seed"`
	Speed           float64       `json:"speed"`
	VirtualDuration time.Duration `json:"virtual_duration_ns"`
	// TimelineDigest fingerprints the compiled workload (scenario.Digest);
	// Fingerprint covers the whole deterministic report.
	TimelineDigest string `json:"timeline_digest"`

	TimelineTags     int `json:"timeline_tags"`
	TimelineReadings int `json:"timeline_readings"`
	TimelineEvents   int `json:"timeline_events"`
	GateChanges      int `json:"gate_changes"`
	PeakConcurrent   int `json:"peak_concurrent"`

	Fleet FleetCounters `json:"fleet"`
	Gates []GateReport  `json:"gates"`
	// ReadRate is the per-tag read-count histogram over the registry's
	// final state (cumulative, Fig. 4 shaped).
	ReadRate []Bucket `json:"read_rate_histogram"`

	Fingerprint string `json:"fingerprint"`
	Wall        Wall   `json:"wall"`
}

// epoch anchors virtual time: observation k at virtual offset t carries
// the timestamp epoch+t, independent of the wall clock, so registry
// state is a pure function of the compiled timeline.
var epoch = time.Unix(0, 0).UTC()

// bucketBounds are the cumulative histogram edges for ReadRate.
var bucketBounds = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// Run compiles and replays one scenario through a fresh fleet.Manager,
// returning the run report. The context aborts the replay (the partial
// run is discarded with an error).
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if cfg.Speed < 0 || math.IsNaN(cfg.Speed) || math.IsInf(cfg.Speed, 0) {
		return nil, fmt.Errorf("replay: Speed must be a finite value >= 0 (0 = unthrottled), got %v", cfg.Speed)
	}
	compiled, err := scenario.Compile(cfg.Spec, cfg.Seed)
	if err != nil {
		return nil, err
	}

	fc := fleet.DefaultConfig()
	fc.MaxTags = cfg.MaxTags
	fc.QuarantineK = cfg.QuarantineK
	m := fleet.New(fc)
	if err := m.Start(ctx); err != nil {
		return nil, fmt.Errorf("replay: start fleet: %w", err)
	}
	defer m.Stop()

	spec := compiled.Spec
	ingests := make([]*fleet.Ingest, len(spec.Gates))
	cycles := make([]int, len(spec.Gates))
	for i, g := range spec.Gates {
		ingests[i] = m.NewIngest(g.Reader)
	}

	pace := newPacer(cfg.Speed, 0)
	wallStart := pace.wallStart
	for i := range compiled.Events {
		ev := &compiled.Events[i]
		if err := pace.wait(ctx, ev.At); err != nil {
			return nil, fmt.Errorf("replay: aborted at virtual %v: %w", ev.At, err)
		}
		deliverEvent(compiled, ingests[ev.Gate], ev, 0)
		cycles[ev.Gate]++
	}
	wallEnd := time.Now() //tagwatch:allow-wallclock Wall report section is excluded from the fingerprint

	rep := &Report{
		Scenario:         spec.Name,
		Seed:             cfg.Seed,
		Speed:            cfg.Speed,
		VirtualDuration:  spec.Duration,
		TimelineDigest:   compiled.Digest(),
		TimelineTags:     compiled.Stats.Tags,
		TimelineReadings: compiled.Stats.Readings,
		TimelineEvents:   compiled.Stats.Events,
		GateChanges:      compiled.Stats.GateChanges,
		PeakConcurrent:   compiled.Stats.PeakConcurrent,
	}
	reg := m.Registry()
	obs, handoffs := reg.Stats()
	evicted, refused, qs := reg.GuardStats()
	published, _, _ := m.Bus().Stats()
	rep.Fleet = FleetCounters{
		TagsSeen:            reg.Len(),
		Observations:        obs,
		Handoffs:            handoffs,
		Evicted:             evicted,
		QuarantineRefused:   refused,
		QuarantineHeld:      qs.Held,
		QuarantineConfirmed: qs.Confirmed,
		BusPublished:        published,
	}
	for i, g := range spec.Gates {
		rep.Gates = append(rep.Gates, GateReport{
			Reader:   g.Reader,
			Readings: ingests[i].Readings(),
			Cycles:   cycles[i],
		})
	}
	rep.ReadRate = histogram(reg)
	fp, err := rep.fingerprint()
	if err != nil {
		return nil, err
	}
	rep.Fingerprint = fp
	rep.Wall = Wall{
		Start:     wallStart,
		End:       wallEnd,
		ElapsedMS: wallEnd.Sub(wallStart).Milliseconds(),
	}
	if el := wallEnd.Sub(wallStart); el > 0 {
		rep.Wall.EffectiveSpeed = float64(spec.Duration) / float64(el)
	}
	return rep, nil
}

// deliverEvent replays one compiled cycle event through its gate's
// ingest: a registry merge per reading, then assessments refreshed
// exactly as a supervisor does after a cycle — one verdict per distinct
// tag read in the window, at the shared per-tag rate Λ(present) — and
// the cycle summary on the bus. This is the single delivery path Run,
// the failover drill, and the gauntlet share, so a drill segment is
// bit-identical to the equivalent slice of a plain replay. skew offsets
// the observation timestamps this gate stamps — a reader whose clock is
// off by a fixed amount — without moving the event's place in the
// timeline.
func deliverEvent(compiled *scenario.Compiled, in *fleet.Ingest, ev *scenario.CycleEvent, skew time.Duration) {
	for _, r := range ev.Readings {
		in.Observe(core.Reading{
			EPC:      compiled.Tags[r.Tag].EPC,
			Time:     r.At,
			Antenna:  int(r.Antenna),
			Channel:  int(r.Channel),
			PhaseRad: float64(r.PhaseRad),
			RSSdBm:   float64(r.RSSdBm),
		}, epoch.Add(r.At+skew))
	}
	mobile := make(map[int32]bool, len(ev.Mobile))
	for _, t := range ev.Mobile {
		mobile[t] = true
	}
	irr := compiled.Spec.Cost.IRR(ev.Present)
	assessed := make(map[int32]bool, ev.Present)
	for _, r := range ev.Readings {
		if assessed[r.Tag] {
			continue
		}
		assessed[r.Tag] = true
		in.UpdateAssessment(compiled.Tags[r.Tag].EPC, mobile[r.Tag], irr)
	}
	in.PublishCycle(epoch.Add(ev.At+skew), &fleet.CycleSummary{
		Present:      ev.Present,
		Mobile:       len(ev.Mobile),
		Targets:      len(ev.Mobile),
		PhaseIReads:  ev.Present,
		PhaseIIReads: len(ev.Readings),
	})
}

// histogram builds the cumulative per-tag read-count distribution from
// the registry's final (sorted, deterministic) snapshot.
func histogram(reg *fleet.Registry) []Bucket {
	out := make([]Bucket, len(bucketBounds))
	for i, le := range bucketBounds {
		out[i].Le = le
	}
	for _, st := range reg.Snapshot() {
		for i, le := range bucketBounds {
			if float64(st.Reads) <= le {
				out[i].Count++
			}
		}
	}
	return out
}

// fingerprint hashes the deterministic portion of the report: the
// JSON encoding with Fingerprint and Wall zeroed. Two same-seed runs
// must agree on it regardless of wall-clock pacing.
func (r *Report) fingerprint() (string, error) {
	cp := *r
	cp.Fingerprint = ""
	cp.Wall = Wall{}
	b, err := json.Marshal(cp)
	if err != nil {
		return "", fmt.Errorf("replay: fingerprint: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}
