package replay

import (
	"context"
	"testing"
	"time"

	"tagwatch/internal/chaos"
)

// drillLink is the degraded replication link every drill test runs over:
// latency with jitter, truncated frames, corrupted bytes, mid-write
// resets, and a byte-count blackhole that leaves the link half-open.
// Probabilities are per read/write op.
func drillLink(seed int64) chaos.Config {
	return chaos.Config{
		Seed:           seed,
		Latency:        200 * time.Microsecond,
		Jitter:         time.Millisecond,
		TruncateProb:   0.03,
		CorruptProb:    0.06,
		ResetProb:      0.03,
		BlackholeAfter: 384 << 10,
	}
}

// TestFailoverDrill is the CI failover-drill acceptance gate: a primary
// replicating over a hostile link is killed mid-run at a seeded point,
// the standby is promoted, the replay finishes on the promoted fleet,
// and the promoted registry must fingerprint identically to the
// no-failover control run. Running the whole drill twice also pins the
// drill itself as deterministic.
func TestFailoverDrill(t *testing.T) {
	runOnce := func(t *testing.T) *DrillReport {
		t.Helper()
		rep, err := RunFailoverDrill(context.Background(), DrillConfig{
			Spec:         shrunkRush(t),
			Seed:         21,
			Speed:        100, // paced: the link stays busy for the whole run
			KillFraction: 0.5,
			Link:         drillLink(7),
			Dir:          t.TempDir(),
		})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Match {
			t.Fatalf("promoted registry diverged from control:\ncontrol  %s (%d tags)\npromoted %s (%d tags)\nreport: %+v",
				rep.ControlFingerprint, rep.ControlTags,
				rep.PromotedFingerprint, rep.PromotedTags, rep)
		}
		return rep
	}

	a := runOnce(t)
	if a.ControlTags == 0 {
		t.Fatal("control run saw no tags; the drill replayed nothing")
	}
	if a.KillAt <= 0 || a.KillAt >= a.Events {
		t.Fatalf("kill point %d not strictly mid-run (events %d)", a.KillAt, a.Events)
	}
	// The standby must have followed a live stream, not just one final
	// snapshot: journal records were applied before the kill.
	if a.Standby.Records == 0 {
		t.Fatalf("standby applied no journal records before the kill: %+v", a.Standby)
	}
	// The link must actually have been degraded — a drill that injected
	// nothing proves nothing.
	faults := a.Chaos.Truncations + a.Chaos.Corruptions + a.Chaos.Resets + a.Chaos.Blackholes
	if faults == 0 {
		t.Fatalf("chaos link injected no faults: %+v", a.Chaos)
	}
	if len(a.Peers) != 1 {
		t.Fatalf("want 1 replication peer, got %+v", a.Peers)
	}

	b := runOnce(t)
	if b.ControlFingerprint != a.ControlFingerprint {
		t.Fatalf("drill not deterministic: control fingerprints differ\n%s\n%s",
			a.ControlFingerprint, b.ControlFingerprint)
	}
	if b.PromotedFingerprint != a.PromotedFingerprint {
		t.Fatalf("drill not deterministic: promoted fingerprints differ\n%s\n%s",
			a.PromotedFingerprint, b.PromotedFingerprint)
	}
}

// TestFailoverDrillCleanLink pins the invariant without chaos in the
// way: even the in-flight window excuse is absent, so any mismatch is a
// replication or restore bug, full stop.
func TestFailoverDrillCleanLink(t *testing.T) {
	rep, err := RunFailoverDrill(context.Background(), DrillConfig{
		Spec:         shrunkRush(t),
		Seed:         3,
		KillFraction: 0.3,
		Dir:          t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Match {
		t.Fatalf("clean-link drill diverged:\ncontrol  %s (%d tags)\npromoted %s (%d tags)",
			rep.ControlFingerprint, rep.ControlTags,
			rep.PromotedFingerprint, rep.PromotedTags)
	}
	if rep.PromotedTags != rep.ControlTags {
		t.Fatalf("tag counts differ: control %d promoted %d", rep.ControlTags, rep.PromotedTags)
	}
}

// TestFailoverDrillRejectsBadConfig covers the guard rails.
func TestFailoverDrillRejectsBadConfig(t *testing.T) {
	if _, err := RunFailoverDrill(context.Background(), DrillConfig{Spec: shrunkRush(t), Seed: 1}); err == nil {
		t.Fatal("drill without Dir must be rejected")
	}
	spec := shrunkRush(t)
	spec.Duration = 0
	if _, err := RunFailoverDrill(context.Background(), DrillConfig{Spec: spec, Seed: 1, Dir: t.TempDir()}); err == nil {
		t.Fatal("degenerate spec must be rejected")
	}
}
