package replay

import (
	"context"
	"time"
)

// pacer schedules wall-clock delivery of virtual-timestamped events:
// it anchors a wall start to a virtual start and sleeps until each
// event's wall target. Speed is virtual seconds per wall second; zero
// means unthrottled (wait never sleeps and only reports context
// state). Run and the failover drill share this so a drill segment is
// paced bit-identically to the equivalent slice of a plain replay.
//
// The pacer is the sanctioned wall-clock consumer in this package:
// everything that shapes the report fingerprint runs on virtual
// timestamps, and the pacer only decides *when* those deterministic
// events hit the wall (the Wall report section, which is excluded from
// the fingerprint, is the other consumer).
type pacer struct {
	speed        float64
	wallStart    time.Time
	virtualStart time.Duration
}

// newPacer anchors a pace of speed virtual seconds per wall second at
// the virtual offset of the first event to deliver, so a mid-timeline
// segment resumes at full rate instead of sleeping through the
// already-delivered prefix.
func newPacer(speed float64, virtualStart time.Duration) *pacer {
	return &pacer{
		speed:        speed,
		wallStart:    time.Now(), //tagwatch:allow-wallclock wall pacing anchor; never feeds the deterministic report sections
		virtualStart: virtualStart,
	}
}

// wait blocks until the wall target for virtual offset at, or until
// the context dies; it returns ctx.Err(), nil while the context lives.
func (p *pacer) wait(ctx context.Context, at time.Duration) error {
	if p.speed <= 0 {
		return ctx.Err()
	}
	target := p.wallStart.Add(time.Duration(float64(at-p.virtualStart) / p.speed))
	d := time.Until(target) //tagwatch:allow-wallclock wall pacing of virtual events
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d) //tagwatch:allow-wallclock wall pacing of virtual events
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
