// Failover drill: the executable proof behind internal/replication.
//
// The drill replays one compiled scenario twice. The control run feeds
// every event through a single uninterrupted fleet. The failover run
// feeds the same events through a primary that replicates its durable
// registry to a hot standby over a chaos-degraded link, kills the
// primary at a seeded mid-run point (no final flush — exactly what a
// real crash loses), promotes the standby, and finishes the run on the
// promoted fleet. Both runs end in a registry fingerprint; they must
// match bit for bit.
//
// The drill quiesces (flush + wait for every peer's ack) before the
// kill, which makes the documented in-flight window — unflushed registry
// changes plus unacked frames — empty by construction. That is the
// planned-failover contract; an unplanned kill loses at most that
// window, never acked history.
package replay

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"path/filepath"
	"time"

	"tagwatch/internal/chaos"
	"tagwatch/internal/fleet"
	"tagwatch/internal/replication"
	"tagwatch/internal/scenario"
)

// DrillConfig tunes one failover drill.
type DrillConfig struct {
	// Spec and Seed pick the workload, exactly as replay.Config does.
	Spec scenario.Spec
	Seed int64
	// Speed paces event delivery at the usual virtual-to-wall multiple
	// (0 = unthrottled). Pacing never changes registry state — virtual
	// timestamps do the bookkeeping — but a paced drill keeps the
	// replication link busy for its whole run, which is what gives the
	// chaos injector real traffic to degrade.
	Speed float64
	// KillFraction is the fraction of compiled events the primary
	// delivers before it is killed (clamped inside (0, 1); default 0.5).
	KillFraction float64
	// Link configures the fault injector wrapped around the replication
	// transport. The zero value is a clean link.
	Link chaos.Config
	// JournalFlush and SnapshotInterval set the primary's checkpoint
	// cadence (defaults 25ms and 2s — fast enough that the drill ships a
	// live journal stream, not one final snapshot).
	JournalFlush     time.Duration
	SnapshotInterval time.Duration
	// SyncTimeout bounds the pre-kill quiesce; with a hostile Link this
	// is how long the shipper gets to push the backlog through (default
	// 30s).
	SyncTimeout time.Duration
	// Dir is the parent for the two state directories the drill creates
	// ("primary" and "standby"). Required.
	Dir string
}

// DrillReport is the outcome of one drill.
type DrillReport struct {
	Scenario string `json:"scenario"`
	Seed     int64  `json:"seed"`
	Events   int    `json:"events"`
	// KillAt is the event index at which the primary died: events
	// [0, KillAt) ran on the primary, [KillAt, Events) on the promoted
	// standby.
	KillAt int `json:"kill_at"`

	ControlFingerprint  string `json:"control_fingerprint"`
	PromotedFingerprint string `json:"promoted_fingerprint"`
	// Match is the drill verdict: the promoted registry is
	// indistinguishable from the never-failed one.
	Match        bool `json:"match"`
	ControlTags  int  `json:"control_tags"`
	PromotedTags int  `json:"promoted_tags"`

	// Chaos counts the faults the link actually suffered; a drill that
	// claims to exercise a degraded link should assert these are nonzero.
	Chaos chaos.Stats `json:"chaos"`
	// Peers is the primary's view of the link just before it was killed;
	// Standby the standby's just before promotion.
	Peers   []replication.PeerStatus  `json:"peers"`
	Standby replication.StandbyStatus `json:"standby"`
}

// drillFleetConfig is the fleet configuration every drill node shares.
// Quarantine and capacity bounds are off: both are node-local state
// that intentionally does not replicate (a promoted standby would
// re-probation tags the primary had already admitted, and eviction
// order depends on local arrival history), so with them on the control
// and failover runs would diverge by design, not by bug.
func drillFleetConfig(stateDir string) fleet.Config {
	fc := fleet.DefaultConfig()
	fc.QuarantineK = 0
	fc.MaxTags = 0
	fc.StateDir = stateDir
	return fc
}

// RunFailoverDrill runs the control and failover replays and compares
// their registry fingerprints. A non-nil error means the drill could not
// be run to completion; a completed drill with diverged state returns
// Match=false, not an error, so callers can report both fingerprints.
func RunFailoverDrill(ctx context.Context, cfg DrillConfig) (*DrillReport, error) {
	if cfg.Dir == "" {
		return nil, errors.New("drill: Dir is required")
	}
	if cfg.Speed < 0 || math.IsNaN(cfg.Speed) || math.IsInf(cfg.Speed, 0) {
		return nil, fmt.Errorf("drill: Speed must be a finite value >= 0 (0 = unthrottled), got %v", cfg.Speed)
	}
	if cfg.KillFraction <= 0 || cfg.KillFraction >= 1 {
		cfg.KillFraction = 0.5
	}
	if cfg.JournalFlush <= 0 {
		cfg.JournalFlush = 25 * time.Millisecond
	}
	if cfg.SnapshotInterval <= 0 {
		cfg.SnapshotInterval = 2 * time.Second
	}
	if cfg.SyncTimeout <= 0 {
		cfg.SyncTimeout = 30 * time.Second
	}

	compiled, err := scenario.Compile(cfg.Spec, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if len(compiled.Events) < 2 {
		return nil, fmt.Errorf("drill: timeline has %d events; need at least 2 to kill mid-run", len(compiled.Events))
	}
	kill := int(cfg.KillFraction * float64(len(compiled.Events)))
	if kill < 1 {
		kill = 1
	}
	if kill >= len(compiled.Events) {
		kill = len(compiled.Events) - 1
	}
	rep := &DrillReport{
		Scenario: compiled.Spec.Name,
		Seed:     cfg.Seed,
		Events:   len(compiled.Events),
		KillAt:   kill,
	}

	// Control: one uninterrupted, in-memory fleet over the whole
	// timeline, always unthrottled — pacing cannot change registry state,
	// so the control run never pays for it.
	control := fleet.New(drillFleetConfig(""))
	if err := control.Start(ctx); err != nil {
		return nil, fmt.Errorf("drill: start control fleet: %w", err)
	}
	if err := Feed(ctx, control, compiled, 0, len(compiled.Events), 0); err != nil {
		//tagwatch:allow-droppederr in-memory fleet; the feed error is what matters
		_ = control.Stop()
		return nil, err
	}
	rep.ControlFingerprint, err = RegistryFingerprint(control.Registry())
	rep.ControlTags = control.Registry().Len()
	if serr := control.Stop(); err == nil {
		err = serr
	}
	if err != nil {
		return nil, err
	}

	// Failover: standby first, so the primary has a peer to dial.
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("drill: listen replication: %w", err)
	}
	sbcfg := drillFleetConfig(filepath.Join(cfg.Dir, "standby"))
	sbcfg.ReplicationFrameTimeout = time.Second
	sbcfg.ReplicationSessionTimeout = 2 * time.Second
	sb, err := fleet.NewStandby(sbcfg, lis)
	if err != nil {
		lis.Close()
		return nil, err
	}
	if err := sb.Start(ctx); err != nil {
		lis.Close()
		return nil, err
	}
	defer sb.Stop()

	inj := chaos.New(cfg.Link)
	pcfg := drillFleetConfig(filepath.Join(cfg.Dir, "primary"))
	pcfg.JournalFlush = cfg.JournalFlush
	pcfg.SnapshotInterval = cfg.SnapshotInterval
	pcfg.ReplicateTo = []string{lis.Addr().String()}
	// Snappy link timings: the drill's chaos kills sessions constantly,
	// and a drill should spend its wall-clock on replication traffic, not
	// on production-sized backoffs and read deadlines.
	pcfg.ReplicationHeartbeat = 20 * time.Millisecond
	pcfg.ReplicationFrameTimeout = time.Second
	pcfg.ReplicationBackoffBase = 10 * time.Millisecond
	pcfg.ReplicationBackoffMax = 250 * time.Millisecond
	pcfg.ReplicationDial = func(ctx context.Context, addr string) (net.Conn, error) {
		var d net.Dialer
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err != nil {
			return nil, err
		}
		return inj.Conn(conn), nil
	}
	primary := fleet.New(pcfg)
	if err := primary.Start(ctx); err != nil {
		return nil, fmt.Errorf("drill: start primary: %w", err)
	}
	if err := Feed(ctx, primary, compiled, 0, kill, cfg.Speed); err != nil {
		primary.Kill()
		return nil, err
	}

	// Quiesce: flush the dirty registry and wait until the standby acked
	// everything — through whatever the chaos link is doing. This is what
	// makes the drill's expected loss exactly zero.
	sctx, cancel := context.WithTimeout(ctx, cfg.SyncTimeout)
	err = primary.SyncReplication(sctx)
	cancel()
	if err != nil {
		primary.Kill()
		return nil, fmt.Errorf("drill: quiesce before kill: %w", err)
	}
	rep.Peers = primary.ReplicationStatus()

	// Kill, not Stop: no final flush, no graceful close. The standby has
	// exactly what was shipped and acked.
	primary.Kill()

	rep.Standby = sb.Status()
	promoted, err := sb.Promote(ctx)
	if err != nil {
		return nil, err
	}
	if err := Feed(ctx, promoted, compiled, kill, len(compiled.Events), cfg.Speed); err != nil {
		//tagwatch:allow-droppederr the feed error is what matters
		_ = promoted.Stop()
		return nil, err
	}
	rep.PromotedFingerprint, err = RegistryFingerprint(promoted.Registry())
	rep.PromotedTags = promoted.Registry().Len()
	if serr := promoted.Stop(); err == nil {
		err = serr
	}
	if err != nil {
		return nil, err
	}

	rep.Chaos = inj.Stats()
	rep.Match = rep.ControlFingerprint == rep.PromotedFingerprint
	return rep, nil
}
