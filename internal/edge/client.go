package edge

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"net"
	"strings"
	"sync"
	"time"

	"tagwatch/internal/fleet"
)

// ClientStatus snapshots the upstream link's convergence accounting.
type ClientStatus struct {
	Upstream  string `json:"upstream"`
	Connected bool   `json:"connected"`
	// Identity/Cursor form the resume cursor: the last contiguously
	// applied position in the upstream's sequence space.
	Identity string `json:"identity"`
	Cursor   uint64 `json:"cursor"`
	// Sessions counts established upstream streams; Frames counts SSE
	// frames applied across all of them.
	Sessions uint64 `json:"sessions"`
	Frames   uint64 `json:"frames"`
	// Resets counts full-state re-anchors received; IdentityChanges how
	// many of those crossed into a new primary's sequence space (a
	// failover or restart upstream).
	Resets          uint64 `json:"resets"`
	IdentityChanges uint64 `json:"identity_changes"`
	// Gaps counts loss intervals upstream announced to us; each severs
	// the session and resolves on reconnect as either GapsHealed (ring
	// replay recovered the hole) or GapsReset (fell off the ring, full
	// re-anchor).
	Gaps       uint64 `json:"gaps"`
	GapsHealed uint64 `json:"gaps_healed"`
	GapsReset  uint64 `json:"gaps_reset"`
	// ContiguityViolations counts frames that arrived with a sequence
	// hole NOT covered by a gap announcement — upstream breaking its
	// own bounded-loss promise. Zero in any correct deployment; the
	// gauntlet oracle asserts it.
	ContiguityViolations uint64 `json:"contiguity_violations"`
	// StalenessMS is milliseconds since the last upstream frame
	// (-1 before any frame has ever arrived).
	StalenessMS int64 `json:"staleness_ms"`
	// Tags is the mirror population.
	Tags int `json:"tags"`
}

// Client maintains the upstream SSE subscription and the local mirror.
// Run drives a dial/stream/backoff loop until its context ends; the
// mirror and downstream bus stay serveable the whole time — including
// while upstream is unreachable (the degraded-not-dead contract).
type Client struct {
	cfg  Config
	down *fleet.Bus
	rng  *rand.Rand // jitter; guarded by mu

	mu        sync.Mutex
	mirror    *mirror
	identity  string
	cursor    uint64
	connected bool
	lastFrame time.Time
	// gapPending is set between "upstream announced a gap, we severed"
	// and the next session's first anchor, which classifies the recovery
	// (replay → healed, reset → reset).
	gapPending bool

	sessions        uint64
	frames          uint64
	resets          uint64
	identityChanges uint64
	gaps            uint64
	gapsHealed      uint64
	gapsReset       uint64
	contiguityViols uint64
}

// NewClient builds a client with its own downstream bus (fresh
// identity, downstream ring). Call Run to start following upstream.
func NewClient(cfg Config) *Client {
	cfg = cfg.withDefaults()
	seed := cfg.Seed
	if seed == 0 {
		h := fnv.New64a()
		fmt.Fprintf(h, "edge|%s", cfg.Upstream)
		seed = int64(h.Sum64())
	}
	down := fleet.NewBus()
	down.SetRingCap(cfg.EventRingCap)
	down.SetSubscriberLimit(cfg.MaxSSEClients)
	return &Client{
		cfg:    cfg,
		down:   down,
		rng:    rand.New(rand.NewSource(seed)),
		mirror: newMirror(),
	}
}

// Bus exposes the downstream event bus (re-stamped sequence space, own
// identity) that the edge Server streams to its clients.
func (c *Client) Bus() *fleet.Bus { return c.down }

// Snapshot returns the mirror sorted by EPC — byte-identical in shape
// to fleet.Registry.Snapshot, so the same fingerprint function applies.
func (c *Client) Snapshot() []fleet.TagState {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mirror.snapshot()
}

// Cursor reports the last contiguously applied upstream position.
func (c *Client) Cursor() (identity string, seq uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.identity, c.cursor
}

// Status snapshots the link accounting.
func (c *Client) Status() ClientStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	staleness := int64(-1)
	if !c.lastFrame.IsZero() {
		staleness = time.Since(c.lastFrame).Milliseconds()
	}
	return ClientStatus{
		Upstream:             c.cfg.Upstream,
		Connected:            c.connected,
		Identity:             c.identity,
		Cursor:               c.cursor,
		Sessions:             c.sessions,
		Frames:               c.frames,
		Resets:               c.resets,
		IdentityChanges:      c.identityChanges,
		Gaps:                 c.gaps,
		GapsHealed:           c.gapsHealed,
		GapsReset:            c.gapsReset,
		ContiguityViolations: c.contiguityViols,
		StalenessMS:          staleness,
		Tags:                 len(c.mirror.tags),
	}
}

// Stale reports whether the mirror's freshness has fallen past the
// configured staleness bound (true also before any frame ever arrived).
func (c *Client) Stale() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastFrame.IsZero() || time.Since(c.lastFrame) > c.cfg.StaleAfter
}

// Run follows upstream until ctx is cancelled: dial, stream, and on any
// session error back off (exponential, jittered) and reconnect with the
// current cursor. It returns ctx.Err() at shutdown — the loop itself
// never gives up, because a dead upstream is a condition the edge
// outlives, not an error it propagates.
func (c *Client) Run(ctx context.Context) error {
	failures := 0
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		err := c.session(ctx)
		c.mu.Lock()
		c.connected = false
		c.mu.Unlock()
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if errors.Is(err, errResync) {
			// Deliberate severance (gap announced): reconnect immediately —
			// the ring is draining while we wait.
			failures = 0
			c.logf("edge: resync against %s: reconnecting", c.cfg.Upstream)
			continue
		}
		failures++
		delay := c.backoff(failures)
		c.logf("edge: upstream %s: %v (retry %d in %s)", c.cfg.Upstream, err, failures, delay)
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// errResync is the session's deliberate self-severance: upstream
// announced a gap, and the recovery path is a fresh subscription from
// the last contiguous cursor.
var errResync = errors.New("edge: resync requested")

func (c *Client) backoff(failures int) time.Duration {
	d := c.cfg.BackoffBase
	for i := 1; i < failures && d < c.cfg.BackoffMax; i++ {
		d *= 2
	}
	if d > c.cfg.BackoffMax {
		d = c.cfg.BackoffMax
	}
	c.mu.Lock()
	jitter := 0.8 + 0.4*c.rng.Float64()
	c.mu.Unlock()
	return time.Duration(float64(d) * jitter)
}

func (c *Client) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

func (c *Client) dial(ctx context.Context) (net.Conn, error) {
	if c.cfg.Dial != nil {
		dctx, cancel := context.WithTimeout(ctx, c.cfg.DialTimeout)
		defer cancel()
		return c.cfg.Dial(dctx, c.cfg.Upstream)
	}
	d := net.Dialer{Timeout: c.cfg.DialTimeout}
	return d.DialContext(ctx, "tcp", c.cfg.Upstream)
}

// session runs one upstream subscription: request, status/header parse,
// then the frame loop. Every conn operation runs under a deadline —
// the upstream link is exactly the flaky-network surface the
// conndeadline analyzer polices — so a half-open TCP session surfaces
// as a timeout, never a wedged goroutine.
func (c *Client) session(ctx context.Context) error {
	conn, err := c.dial(ctx)
	if err != nil {
		return fmt.Errorf("dial: %w", err)
	}
	defer conn.Close()
	// A context cancellation must unblock any in-flight conn I/O: force
	// the pending operation to fail now instead of at its deadline.
	stop := context.AfterFunc(ctx, func() {
		conn.SetDeadline(time.Now())
	})
	defer stop()

	c.mu.Lock()
	identity, cursor := c.identity, c.cursor
	c.mu.Unlock()

	var req strings.Builder
	fmt.Fprintf(&req, "GET /api/events HTTP/1.1\r\nHost: %s\r\nAccept: text/event-stream\r\nConnection: keep-alive\r\n", c.cfg.Upstream)
	if identity != "" {
		fmt.Fprintf(&req, "Last-Event-ID: %s\r\n", fleet.FormatCursor(identity, cursor))
	}
	req.WriteString("\r\n")
	conn.SetWriteDeadline(time.Now().Add(c.cfg.WriteTimeout))
	if _, err := conn.Write([]byte(req.String())); err != nil {
		return fmt.Errorf("request: %w", err)
	}

	br := bufio.NewReaderSize(conn, 64<<10)
	conn.SetReadDeadline(time.Now().Add(c.cfg.ReadTimeout))
	status, err := br.ReadString('\n')
	if err != nil {
		return fmt.Errorf("status: %w", err)
	}
	parts := strings.SplitN(strings.TrimSpace(status), " ", 3)
	if len(parts) < 2 || parts[1] != "200" {
		return fmt.Errorf("upstream refused stream: %q", strings.TrimSpace(status))
	}
	// Drain headers to the blank line; the body is the event stream.
	for {
		conn.SetReadDeadline(time.Now().Add(c.cfg.ReadTimeout))
		line, err := br.ReadString('\n')
		if err != nil {
			return fmt.Errorf("headers: %w", err)
		}
		if strings.TrimRight(line, "\r\n") == "" {
			break
		}
	}

	c.mu.Lock()
	c.sessions++
	c.connected = true
	c.mu.Unlock()
	c.logf("edge: streaming from %s (cursor %s:%d)", c.cfg.Upstream, identity, cursor)

	return c.frameLoop(ctx, conn, br)
}

// frameLoop reads SSE frames until the stream dies or a gap forces a
// resync.
func (c *Client) frameLoop(ctx context.Context, conn net.Conn, br *bufio.Reader) error {
	var id, event string
	var data []byte
	for {
		conn.SetReadDeadline(time.Now().Add(c.cfg.ReadTimeout))
		line, err := br.ReadString('\n')
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("stream: %w", err)
		}
		line = strings.TrimRight(line, "\r\n")
		switch {
		case line == "":
			if event != "" || len(data) > 0 {
				err := c.applyFrame(id, event, data)
				id, event, data = "", "", nil
				if err != nil {
					return err
				}
			}
		case strings.HasPrefix(line, ":"):
			// Keepalive comment: freshness signal, nothing to apply.
			c.touch()
		case strings.HasPrefix(line, "id: "):
			id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = append(data, strings.TrimPrefix(line, "data: ")...)
		}
	}
}

func (c *Client) touch() {
	c.mu.Lock()
	c.lastFrame = time.Now()
	c.mu.Unlock()
}

// applyFrame dispatches one complete SSE frame. It returns errResync
// when the session must be severed and re-anchored (gap announced,
// identity changed mid-stream).
func (c *Client) applyFrame(id, event string, data []byte) error {
	frameIdentity, frameSeq, okID := fleet.ParseCursor(id)
	if !okID {
		// The stream preamble and malformed frames carry no cursor;
		// nothing to apply.
		return nil
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	c.lastFrame = time.Now()
	c.frames++

	if event == string(fleet.EventReset) {
		var payload fleet.ResetPayload
		if err := json.Unmarshal(data, &payload); err != nil {
			return fmt.Errorf("reset payload: %w", err)
		}
		if c.identity != "" && payload.Identity != c.identity {
			c.identityChanges++
		}
		if c.gapPending {
			c.gapPending = false
			c.gapsReset++
		}
		c.resets++
		c.adoptResetLocked(payload)
		return nil
	}

	// Any non-reset frame from a different identity mid-stream means the
	// server we are talking to changed sequence spaces under us (or we
	// resumed into a stream we cannot interpret): drop the cursor so the
	// reconnect is answered with a clean reset.
	if c.identity != "" && frameIdentity != c.identity {
		c.identityChanges++
		c.identity, c.cursor = "", 0
		return errResync
	}
	if c.identity == "" {
		// First contact without a reset (upstream replayed for a cursor
		// we didn't send) cannot be interpreted against an empty mirror.
		return errResync
	}

	if frameSeq <= c.cursor {
		return nil // replay overlap with what we already hold
	}

	if event == string(fleet.EventGap) {
		// Upstream announced a loss interval. Honest but unacceptable
		// for a mirror: sever and re-subscribe from the last contiguous
		// cursor — the ring usually still covers the hole (our
		// subscriber buffer overflowed, not the ring) and the replay
		// heals it.
		c.gaps++
		c.gapPending = true
		return errResync
	}

	if frameSeq != c.cursor+1 {
		// A hole with no gap announcement: upstream broke the
		// bounded-loss promise. Count it (the oracle asserts zero), then
		// resync rather than silently absorb it.
		c.contiguityViols++
		c.gapPending = true
		return errResync
	}

	if c.gapPending {
		// Contiguous continuation after a gap severance: the ring replay
		// covered the hole.
		c.gapPending = false
		c.gapsHealed++
	}

	var ev fleet.Event
	if err := json.Unmarshal(data, &ev); err != nil {
		return fmt.Errorf("event payload: %w", err)
	}
	c.cursor = frameSeq
	c.applyEventLocked(ev)
	return nil
}

// adoptResetLocked replaces the mirror with the reset snapshot and
// republishes the difference downstream as tag/tag_drop deltas — so
// downstream clients ride through an upstream failover without needing
// a reset of their own.
func (c *Client) adoptResetLocked(payload fleet.ResetPayload) {
	old := c.mirror
	c.mirror = newMirror()
	for _, st := range payload.Tags {
		c.mirror.tags[st.EPC] = st
	}
	c.identity = payload.Identity
	c.cursor = payload.Cursor

	now := time.Now()
	for epc, st := range c.mirror.tags {
		prev, had := old.tags[epc]
		if !had || !sameTagState(prev, st) {
			st := st
			c.down.Publish(fleet.Event{Type: fleet.EventTag, Reader: st.Reader, At: now, EPC: st.EPC, Tag: &st})
		}
	}
	for epc := range old.tags {
		if _, still := c.mirror.tags[epc]; !still {
			c.down.Publish(fleet.Event{Type: fleet.EventTagDrop, At: now, EPC: epc})
		}
	}
}

// applyEventLocked folds one contiguous upstream event into the mirror
// and republishes it downstream (the downstream bus re-stamps Seq in
// its own sequence space).
func (c *Client) applyEventLocked(ev fleet.Event) {
	switch ev.Type {
	case fleet.EventTag:
		if ev.Tag != nil {
			c.mirror.tags[ev.Tag.EPC] = *ev.Tag
		}
	case fleet.EventTagDrop:
		delete(c.mirror.tags, ev.EPC)
	}
	c.down.Publish(ev)
}

// sameTagState compares two tag images for the reset diff. Reads and
// LastSeen advance on every observation, so comparing the cheap scalar
// fields catches effectively every real change.
func sameTagState(a, b fleet.TagState) bool {
	if a.EPC != b.EPC || a.Reader != b.Reader || a.Antenna != b.Antenna ||
		!a.LastSeen.Equal(b.LastSeen) || a.DeviceTime != b.DeviceTime ||
		a.Reads != b.Reads || a.Mobile != b.Mobile || a.IRR != b.IRR ||
		a.Handoffs != b.Handoffs || len(a.Readers) != len(b.Readers) {
		return false
	}
	for k, v := range a.Readers {
		if b.Readers[k] != v {
			return false
		}
	}
	return true
}
