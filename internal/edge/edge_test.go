package edge

import (
	"bufio"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"tagwatch/internal/chaos"
	"tagwatch/internal/core"
	"tagwatch/internal/epc"
	"tagwatch/internal/fleet"
	"tagwatch/internal/replay"
)

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func testEPC(t *testing.T, i int) epc.EPC {
	t.Helper()
	pop, err := epc.SequentialPopulation([]byte{0x30, 0x1C, 0xA1}, uint32(i), 1, epc.StandardBits)
	if err != nil {
		t.Fatal(err)
	}
	return pop[0]
}

// upstreamManager builds an unstarted fleet manager tuned for fast edge
// tests (snappy heartbeats, a ring deep enough that replay always
// covers the test's event volume).
func upstreamManager(t *testing.T) *fleet.Manager {
	t.Helper()
	cfg := fleet.DefaultConfig()
	cfg.SSEHeartbeat = 100 * time.Millisecond
	cfg.SSEWriteTimeout = 2 * time.Second
	cfg.EventRingCap = 16384
	return fleet.New(cfg)
}

func edgeConfig(upstream string) Config {
	return Config{
		Upstream:     upstream,
		DialTimeout:  2 * time.Second,
		ReadTimeout:  2 * time.Second, // heartbeats arrive every 100ms
		WriteTimeout: 2 * time.Second,
		BackoffBase:  20 * time.Millisecond,
		BackoffMax:   200 * time.Millisecond,
		Seed:         42,
		StaleAfter:   time.Second,
		SSEHeartbeat: 100 * time.Millisecond,
	}
}

// fingerprintsMatch compares the upstream registry against the edge
// mirror via the shared snapshot fingerprint.
func fingerprintsMatch(t *testing.T, m *fleet.Manager, c *Client) bool {
	t.Helper()
	want, err := replay.RegistryFingerprint(m.Registry())
	if err != nil {
		t.Fatal(err)
	}
	got, err := replay.SnapshotFingerprint(c.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	return want == got
}

// TestEdgeMirrorsFleetLive: the base contract — an edge following a
// healthy upstream converges its mirror to the exact registry state
// (fingerprint equality) through one reset plus contiguous deltas.
func TestEdgeMirrorsFleetLive(t *testing.T) {
	m := upstreamManager(t)
	ts := httptest.NewServer(m.Handler())
	defer ts.Close()

	client := NewClient(edgeConfig(ts.Listener.Addr().String()))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); _ = client.Run(ctx) }()
	defer func() { cancel(); <-done }()

	now := time.Now()
	for i := 0; i < 50; i++ {
		m.Registry().Observe("r0", core.Reading{EPC: testEPC(t, i), Antenna: 1}, now.Add(time.Duration(i)*time.Millisecond))
	}
	m.Registry().UpdateAssessment("r0", testEPC(t, 3), true, 12.5)

	waitFor(t, 5*time.Second, "mirror to converge", func() bool {
		return fingerprintsMatch(t, m, client)
	})
	st := client.Status()
	if st.Resets != 1 {
		t.Fatalf("resets = %d, want exactly the initial anchor", st.Resets)
	}
	if st.ContiguityViolations != 0 || st.Gaps != 0 {
		t.Fatalf("clean link accounted loss: %+v", st)
	}
	if st.Tags != 50 {
		t.Fatalf("mirror tags = %d, want 50", st.Tags)
	}
}

// TestEdgeHealsThroughFlappingLink: a chaos link that severs the TCP
// session every few KB forces reconnect after reconnect; every one must
// resume via cursor replay, and the mirror must still converge to the
// exact upstream fingerprint with zero unannounced holes.
func TestEdgeHealsThroughFlappingLink(t *testing.T) {
	m := upstreamManager(t)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	inj := chaos.New(chaos.Config{Seed: 7, FlapBytes: 16 << 10})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	serveDone := make(chan struct{})
	go func() { defer close(serveDone); _ = m.Serve(ctx, inj.Listener(lis)) }()
	defer func() { cancel(); <-serveDone }()

	client := NewClient(edgeConfig(lis.Addr().String()))
	clientDone := make(chan struct{})
	go func() { defer close(clientDone); _ = client.Run(ctx) }()
	defer func() { cancel(); <-clientDone }()

	now := time.Now()
	for i := 0; i < 1500; i++ {
		m.Registry().Observe("r0", core.Reading{EPC: testEPC(t, i%60), Antenna: 1 + i%3}, now.Add(time.Duration(i)*time.Millisecond))
		if i%200 == 0 {
			time.Sleep(5 * time.Millisecond) // let sessions flap mid-stream
		}
	}

	waitFor(t, 15*time.Second, "mirror to converge through flaps", func() bool {
		return fingerprintsMatch(t, m, client)
	})
	st := client.Status()
	if st.Sessions < 2 {
		t.Fatalf("sessions = %d; the flap link should have severed at least once", st.Sessions)
	}
	if st.ContiguityViolations != 0 {
		t.Fatalf("unannounced holes: %+v", st)
	}
	if st.Gaps != st.GapsHealed+st.GapsReset {
		t.Fatalf("gap accounting doesn't balance: %+v", st)
	}
}

// TestEdgeFailoverIdentityReset: when the upstream is replaced by a new
// process (new bus identity — a promoted standby or a restart), the
// edge must detect the identity change and take a clean reset against
// the new sequence space instead of resuming into cursor confusion.
func TestEdgeFailoverIdentityReset(t *testing.T) {
	mA := upstreamManager(t)
	mB := upstreamManager(t)
	tsA := httptest.NewServer(mA.Handler())
	tsB := httptest.NewServer(mB.Handler())
	defer tsA.Close()
	defer tsB.Close()

	now := time.Now()
	for i := 0; i < 10; i++ {
		mA.Registry().Observe("rA", core.Reading{EPC: testEPC(t, i), Antenna: 1}, now)
	}
	for i := 5; i < 20; i++ {
		mB.Registry().Observe("rB", core.Reading{EPC: testEPC(t, i), Antenna: 2}, now.Add(time.Second))
	}

	// The dial hook routes "the upstream address" to whichever primary
	// is currently live — the failover switch.
	var target atomic.Value
	target.Store(tsA.Listener.Addr().String())
	cfg := edgeConfig("failover-virtual")
	cfg.Dial = func(ctx context.Context, addr string) (net.Conn, error) {
		d := net.Dialer{Timeout: 2 * time.Second}
		return d.DialContext(ctx, "tcp", target.Load().(string))
	}
	client := NewClient(cfg)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); _ = client.Run(ctx) }()
	defer func() { cancel(); <-done }()

	waitFor(t, 5*time.Second, "mirror to converge to primary A", func() bool {
		return fingerprintsMatch(t, mA, client)
	})
	identityA, _ := client.Cursor()
	if identityA != mA.Bus().Identity() {
		t.Fatalf("cursor identity %q, want A's %q", identityA, mA.Bus().Identity())
	}

	// Fail over: route to B and sever every connection to A.
	target.Store(tsB.Listener.Addr().String())
	tsA.CloseClientConnections()

	waitFor(t, 10*time.Second, "mirror to re-converge to primary B", func() bool {
		return fingerprintsMatch(t, mB, client)
	})
	st := client.Status()
	if st.Identity != mB.Bus().Identity() {
		t.Fatalf("cursor identity %q, want B's %q", st.Identity, mB.Bus().Identity())
	}
	if st.IdentityChanges < 1 {
		t.Fatalf("identity changes = %d, want >= 1 (the failover)", st.IdentityChanges)
	}
	if st.Resets < 2 {
		t.Fatalf("resets = %d, want the initial anchor plus the failover reset", st.Resets)
	}
	if st.ContiguityViolations != 0 {
		t.Fatalf("failover produced unannounced holes: %+v", st)
	}
}

// TestEdgeServesDownstream: the edge's own API — mirrored /api/tags
// with the staleness header, /healthz degraded-not-dead, and a
// downstream /api/events stream that opens with the same explicit
// reset anchor the upstream protocol uses.
func TestEdgeServesDownstream(t *testing.T) {
	m := upstreamManager(t)
	ts := httptest.NewServer(m.Handler())
	defer ts.Close()

	now := time.Now()
	for i := 0; i < 5; i++ {
		m.Registry().Observe("r0", core.Reading{EPC: testEPC(t, i), Antenna: 1}, now)
	}

	client := NewClient(edgeConfig(ts.Listener.Addr().String()))
	srv := NewServer(client)
	edgeTS := httptest.NewServer(srv.Handler())
	defer edgeTS.Close()

	// Before the client ever connects: still serving, honestly degraded.
	resp, err := http.Get(edgeTS.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz struct {
		Status string `json:"status"`
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d, want degraded-not-dead 200", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hz.Status != "degraded" {
		t.Fatalf("healthz before sync = %q, want degraded", hz.Status)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); _ = client.Run(ctx) }()
	defer func() { cancel(); <-done }()

	waitFor(t, 5*time.Second, "mirror to converge", func() bool {
		return fingerprintsMatch(t, m, client)
	})

	resp, err = http.Get(edgeTS.URL + "/api/tags")
	if err != nil {
		t.Fatal(err)
	}
	staleness := resp.Header.Get("X-Tagwatch-Staleness-Ms")
	var tags struct {
		Count int              `json:"count"`
		Tags  []fleet.TagState `json:"tags"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&tags); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if tags.Count != 5 {
		t.Fatalf("mirrored tags = %d, want 5", tags.Count)
	}
	if staleness == "" || staleness == "-1" {
		t.Fatalf("staleness header = %q, want a fresh measurement", staleness)
	}

	resp, err = http.Get(edgeTS.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hz.Status != "ok" {
		t.Fatalf("healthz after sync = %q, want ok", hz.Status)
	}

	// Downstream /api/events opens with a reset anchor carrying the
	// mirror, in the edge bus's own sequence space.
	req, err := http.NewRequest("GET", edgeTS.URL+"/api/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	frame := readOneFrame(t, br)
	if frame.event != string(fleet.EventReset) {
		t.Fatalf("downstream first frame %q, want reset", frame.event)
	}
	var payload fleet.ResetPayload
	if err := json.Unmarshal([]byte(frame.data), &payload); err != nil {
		t.Fatal(err)
	}
	if payload.Identity != client.Bus().Identity() {
		t.Fatalf("downstream reset identity %q, want the edge bus's %q", payload.Identity, client.Bus().Identity())
	}
	if len(payload.Tags) != 5 {
		t.Fatalf("downstream reset carries %d tags, want 5", len(payload.Tags))
	}
}

type rawFrame struct{ id, event, data string }

func readOneFrame(t *testing.T, br *bufio.Reader) rawFrame {
	t.Helper()
	done := make(chan rawFrame, 1)
	go func() {
		var f rawFrame
		for {
			line, err := br.ReadString('\n')
			if err != nil {
				done <- f
				return
			}
			line = strings.TrimRight(line, "\n")
			switch {
			case line == "":
				if f.event != "" || f.data != "" {
					done <- f
					return
				}
			case strings.HasPrefix(line, "id: "):
				f.id = strings.TrimPrefix(line, "id: ")
			case strings.HasPrefix(line, "event: "):
				f.event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				f.data = strings.TrimPrefix(line, "data: ")
			}
		}
	}()
	select {
	case f := <-done:
		return f
	case <-time.After(5 * time.Second):
		t.Fatal("timed out reading SSE frame")
		return rawFrame{}
	}
}

// TestEdgeGapAnnouncedAndRecovered drives the bus-shed path end to end:
// a tiny upstream subscriber buffer guarantees the edge's SSE channel
// overflows, upstream announces gaps, and the edge heals every one via
// cursor replay (or reset) — fingerprint equality proves no silent loss.
func TestEdgeGapAnnouncedAndRecovered(t *testing.T) {
	cfg := fleet.DefaultConfig()
	cfg.SSEHeartbeat = 100 * time.Millisecond
	cfg.SSEWriteTimeout = 2 * time.Second
	cfg.EventRingCap = 16384
	cfg.EventBuffer = 8 // overflow the per-subscriber channel fast
	m := fleet.New(cfg)
	ts := httptest.NewServer(m.Handler())
	defer ts.Close()

	client := NewClient(edgeConfig(ts.Listener.Addr().String()))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); _ = client.Run(ctx) }()
	defer func() { cancel(); <-done }()

	waitFor(t, 5*time.Second, "initial anchor", func() bool {
		return client.Status().Resets >= 1
	})

	// Burst far past the subscriber buffer while the stream is live.
	now := time.Now()
	for i := 0; i < 800; i++ {
		m.Registry().Observe("r0", core.Reading{EPC: testEPC(t, i%40), Antenna: 1}, now.Add(time.Duration(i)*time.Millisecond))
	}

	waitFor(t, 15*time.Second, "mirror to converge after gaps", func() bool {
		return fingerprintsMatch(t, m, client)
	})
	st := client.Status()
	if st.ContiguityViolations != 0 {
		t.Fatalf("unannounced holes: %+v", st)
	}
	if st.Gaps != st.GapsHealed+st.GapsReset {
		t.Fatalf("gap accounting doesn't balance: %+v", st)
	}
	t.Logf("gap path: %d gaps (%d healed, %d reset) over %d sessions", st.Gaps, st.GapsHealed, st.GapsReset, st.Sessions)
}
