package edge

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"tagwatch/internal/fleet"
)

// Server re-serves the edge mirror over HTTP with the same API shapes —
// and the same cursor/gap/reset SSE semantics — as the fleet primary:
//
//	GET /api/tags    mirrored tag registry (?mobile=1, ?reader=NAME, ?limit=N)
//	GET /api/status  link state, cursor, loss accounting, staleness
//	GET /api/events  downstream event stream (resumable cursors)
//	GET /healthz     200 always — "ok" when fresh, "degraded" when stale;
//	                 a stale mirror is still a better answer than none
//	GET /metrics     Prometheus text exposition
//
// Every /api/tags answer carries X-Tagwatch-Staleness-Ms so a caller
// can judge the mirror's freshness per-response instead of trusting it
// blindly.
type Server struct {
	client  *Client
	started time.Time
}

// NewServer wraps a client's mirror and downstream bus for serving.
func NewServer(c *Client) *Server {
	return &Server{client: c, started: time.Now()}
}

// Handler builds the downstream HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/tags", s.handleTags)
	mux.HandleFunc("GET /api/status", s.handleStatus)
	mux.HandleFunc("GET /api/events", s.handleEvents)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// Serve runs the downstream API on lis until ctx is cancelled, then
// shuts down with a 5s drain. Request contexts derive from ctx so SSE
// streams end promptly at shutdown (same discipline as fleet.Serve).
func (s *Server) Serve(ctx context.Context, lis net.Listener) error {
	srv := &http.Server{
		Handler:           s.Handler(),
		BaseContext:       func(net.Listener) context.Context { return ctx },
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    1 << 20,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(lis) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		err := srv.Shutdown(sctx)
		srv.Close()
		return err
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *Server) stalenessMS() int64 {
	return s.client.Status().StalenessMS
}

func (s *Server) handleTags(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	onlyMobile := q.Get("mobile") == "1" || q.Get("mobile") == "true"
	reader := q.Get("reader")
	limit := 0
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, "bad limit", http.StatusBadRequest)
			return
		}
		limit = n
	}
	tags := s.client.Snapshot()
	out := tags[:0]
	for _, t := range tags {
		if onlyMobile && !t.Mobile {
			continue
		}
		if reader != "" && t.Reader != reader {
			continue
		}
		out = append(out, t)
		if limit > 0 && len(out) == limit {
			break
		}
	}
	w.Header().Set("X-Tagwatch-Staleness-Ms", strconv.FormatInt(s.stalenessMS(), 10))
	writeJSON(w, http.StatusOK, struct {
		Count int              `json:"count"`
		Tags  []fleet.TagState `json:"tags"`
	}{len(out), out})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st := s.client.Status()
	published, dropped, subscribers := s.client.Bus().Stats()
	oldest, newest := s.client.Bus().Coverage()
	writeJSON(w, http.StatusOK, struct {
		Role       string             `json:"role"`
		UptimeSecs int64              `json:"uptime_secs"`
		Tags       int                `json:"tags"`
		Stale      bool               `json:"stale"`
		Link       ClientStatus       `json:"link"`
		Events     fleet.EventsStatus `json:"events"`
	}{
		Role:       "edge",
		UptimeSecs: int64(time.Since(s.started).Seconds()),
		Tags:       st.Tags,
		Stale:      s.client.Stale(),
		Link:       st,
		Events: fleet.EventsStatus{
			Identity:       s.client.Bus().Identity(),
			LastSeq:        newest,
			OldestRetained: oldest,
			Published:      published,
			Dropped:        dropped,
			Gaps:           s.client.Bus().Gaps(),
			Rejected:       s.client.Bus().Rejected(),
			Subscribers:    subscribers,
			PerSubscriber:  s.client.Bus().Drops(),
		},
	})
}

// handleEvents streams the downstream bus through the shared fleet
// streamer — identical resume/gap/reset semantics to the primary, in
// the edge's own sequence space.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	cfg := s.client.cfg
	es := &fleet.EventStreamer{
		Bus:          s.client.Bus(),
		Snapshot:     s.client.Snapshot,
		WriteTimeout: cfg.SSEWriteTimeout,
		Heartbeat:    cfg.SSEHeartbeat,
		Buffer:       cfg.EventBuffer,
	}
	es.ServeHTTP(w, r)
}

// handleHealthz is deliberately degraded-not-dead: the edge exists to
// keep answering when upstream cannot, so a stale mirror is reported
// (status "degraded", staleness measured) but never turned into a 503
// that would make a load balancer amplify an upstream outage into a
// read outage.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.client.Status()
	state := "ok"
	if s.client.Stale() {
		state = "degraded"
	}
	writeJSON(w, http.StatusOK, struct {
		Status      string `json:"status"`
		Connected   bool   `json:"connected"`
		StalenessMS int64  `json:"staleness_ms"`
		Tags        int    `json:"tags"`
		UptimeSecs  int64  `json:"uptime_secs"`
	}{state, st.Connected, st.StalenessMS, st.Tags, int64(time.Since(s.started).Seconds())})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	gauge := func(name, help string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
	}
	counter := func(name, help string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	}

	st := s.client.Status()
	gauge("tagwatch_edge_upstream_connected", "Whether the upstream SSE session is live.")
	connected := 0
	if st.Connected {
		connected = 1
	}
	fmt.Fprintf(&b, "tagwatch_edge_upstream_connected %d\n", connected)
	gauge("tagwatch_edge_staleness_ms", "Milliseconds since the last upstream frame (-1 before any).")
	fmt.Fprintf(&b, "tagwatch_edge_staleness_ms %d\n", st.StalenessMS)
	gauge("tagwatch_edge_mirror_tags", "Tags in the local registry mirror.")
	fmt.Fprintf(&b, "tagwatch_edge_mirror_tags %d\n", st.Tags)
	gauge("tagwatch_edge_cursor", "Last contiguously applied upstream sequence.")
	fmt.Fprintf(&b, "tagwatch_edge_cursor %d\n", st.Cursor)
	counter("tagwatch_edge_sessions_total", "Upstream SSE sessions established.")
	fmt.Fprintf(&b, "tagwatch_edge_sessions_total %d\n", st.Sessions)
	counter("tagwatch_edge_frames_total", "Upstream SSE frames applied.")
	fmt.Fprintf(&b, "tagwatch_edge_frames_total %d\n", st.Frames)
	counter("tagwatch_edge_resets_total", "Full-state re-anchors received from upstream.")
	fmt.Fprintf(&b, "tagwatch_edge_resets_total %d\n", st.Resets)
	counter("tagwatch_edge_identity_changes_total", "Upstream sequence-space changes observed (failovers/restarts).")
	fmt.Fprintf(&b, "tagwatch_edge_identity_changes_total %d\n", st.IdentityChanges)
	counter("tagwatch_edge_gaps_total", "Loss intervals upstream announced to this edge.")
	fmt.Fprintf(&b, "tagwatch_edge_gaps_total %d\n", st.Gaps)
	counter("tagwatch_edge_gaps_healed_total", "Announced gaps recovered by ring replay.")
	fmt.Fprintf(&b, "tagwatch_edge_gaps_healed_total %d\n", st.GapsHealed)
	counter("tagwatch_edge_gaps_reset_total", "Announced gaps recovered by full reset.")
	fmt.Fprintf(&b, "tagwatch_edge_gaps_reset_total %d\n", st.GapsReset)
	counter("tagwatch_edge_contiguity_violations_total", "Unannounced sequence holes (zero in a correct deployment).")
	fmt.Fprintf(&b, "tagwatch_edge_contiguity_violations_total %d\n", st.ContiguityViolations)

	published, dropped, subscribers := s.client.Bus().Stats()
	oldest, newest := s.client.Bus().Coverage()
	counter("tagwatch_edge_bus_events_total", "Events published on the downstream bus.")
	fmt.Fprintf(&b, "tagwatch_edge_bus_events_total %d\n", published)
	counter("tagwatch_edge_bus_dropped_total", "Events dropped across slow downstream subscribers.")
	fmt.Fprintf(&b, "tagwatch_edge_bus_dropped_total %d\n", dropped)
	counter("tagwatch_edge_bus_gaps_total", "Gap frames delivered to downstream subscribers.")
	fmt.Fprintf(&b, "tagwatch_edge_bus_gaps_total %d\n", s.client.Bus().Gaps())
	counter("tagwatch_edge_bus_rejected_total", "Downstream subscriptions refused by the subscriber limit.")
	fmt.Fprintf(&b, "tagwatch_edge_bus_rejected_total %d\n", s.client.Bus().Rejected())
	gauge("tagwatch_edge_bus_subscribers", "Live downstream subscribers.")
	fmt.Fprintf(&b, "tagwatch_edge_bus_subscribers %d\n", subscribers)
	gauge("tagwatch_edge_bus_last_seq", "Newest downstream sequence number.")
	fmt.Fprintf(&b, "tagwatch_edge_bus_last_seq %d\n", newest)
	gauge("tagwatch_edge_bus_ring_oldest_seq", "Oldest downstream sequence still replayable.")
	fmt.Fprintf(&b, "tagwatch_edge_bus_ring_oldest_seq %d\n", oldest)

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write([]byte(b.String()))
}
