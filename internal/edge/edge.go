// Package edge is the read-optimized fan-out tier in front of a fleet
// primary: one hardened SSE client subscribes upstream, maintains a
// local mirror of the merged tag registry, and re-serves /api/tags and
// /api/events to thousands of downstream clients with the same
// cursor/gap/reset semantics the primary speaks — so the fan-out
// multiplies read capacity without multiplying load on the supervisors,
// and without ever introducing a silent discontinuity of its own.
//
// The edge's correctness contract is bounded, explicit loss: every
// event it applies is contiguous with its cursor; a gap frame from
// upstream severs the session and heals through a ring replay (or an
// explicit reset) on reconnect; an upstream failover to a new primary
// identity is detected by the cursor's identity half and answered with
// a clean reset instead of cursor confusion against the new sequence
// space. When upstream is down the edge keeps serving its mirror —
// staleness is measured and exposed, /healthz reports degraded-not-dead
// — because an honest stale answer beats an outage.
package edge

import (
	"context"
	"net"
	"sort"
	"time"

	"tagwatch/internal/fleet"
)

// Config tunes the edge tier (client + downstream server).
type Config struct {
	// Upstream is the primary's HTTP address (host:port).
	Upstream string
	// Dial overrides the upstream transport dial — the hook chaos tests
	// wrap with a fault injector. Nil uses a plain TCP dialer bounded by
	// DialTimeout.
	Dial func(ctx context.Context, addr string) (net.Conn, error)

	// DialTimeout bounds each connect attempt (default 5s).
	DialTimeout time.Duration
	// ReadTimeout bounds each frame read from upstream; it must exceed
	// the upstream's SSE heartbeat interval or healthy idle streams get
	// severed (default 45s against the fleet's 15s heartbeat).
	ReadTimeout time.Duration
	// WriteTimeout bounds the upstream request write (default 5s).
	WriteTimeout time.Duration
	// BackoffBase and BackoffMax bound the reconnect delay: exponential
	// from the base, capped at the max, with ±20% jitter (defaults
	// 100ms, 5s — the edge reconnects fast; upstream sheds it if needed).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Seed seeds the backoff jitter RNG (0 derives one from the
	// upstream address so two edges never share a schedule).
	Seed int64

	// StaleAfter is how old the last upstream frame may be before the
	// edge reports itself degraded (default 30s).
	StaleAfter time.Duration

	// Downstream serving knobs, mirroring fleet.Config semantics.
	EventBuffer     int           // per-subscriber buffer (default 256)
	EventRingCap    int           // downstream replay ring (default 4096)
	MaxSSEClients   int           // downstream subscriber cap (default 1024)
	SSEWriteTimeout time.Duration // per-frame write bound (default 10s)
	SSEHeartbeat    time.Duration // keepalive spacing (default 15s)

	// Logf, when set, receives connection lifecycle lines.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 45 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 5 * time.Second
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 100 * time.Millisecond
	}
	if c.BackoffMax < c.BackoffBase {
		c.BackoffMax = 5 * time.Second
	}
	if c.StaleAfter <= 0 {
		c.StaleAfter = 30 * time.Second
	}
	if c.EventBuffer <= 0 {
		c.EventBuffer = 256
	}
	if c.EventRingCap <= 0 {
		c.EventRingCap = fleet.DefaultRingCap
	}
	if c.MaxSSEClients <= 0 {
		c.MaxSSEClients = 1024
	}
	if c.SSEWriteTimeout <= 0 {
		c.SSEWriteTimeout = 10 * time.Second
	}
	if c.SSEHeartbeat <= 0 {
		c.SSEHeartbeat = 15 * time.Second
	}
	return c
}

// mirror is the edge's local copy of the merged tag registry, built
// purely from the upstream event stream (reset anchors + contiguous tag
// images/drops).
type mirror struct {
	tags map[string]fleet.TagState
}

func newMirror() *mirror {
	return &mirror{tags: make(map[string]fleet.TagState)}
}

// snapshot returns the mirror sorted by EPC — the same shape (and
// therefore the same fingerprint) as fleet.Registry.Snapshot.
func (m *mirror) snapshot() []fleet.TagState {
	out := make([]fleet.TagState, 0, len(m.tags))
	for _, st := range m.tags {
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].EPC < out[j].EPC })
	return out
}
