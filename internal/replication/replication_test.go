package replication

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"tagwatch/internal/chaos"
	"tagwatch/internal/statestore"
)

// The tests model the fleet's journal grammar with a tiny last-wins
// key/value scheme: records are JSON {"k","v"} pairs, snapshots are the
// JSON map. Replication correctness = the standby's folded store equals
// the primary's model, regardless of how the link behaved.

type kv struct {
	K string `json:"k"`
	V int    `json:"v"`
}

// appendKVs appends n updates over a small key space to the primary,
// mirroring them into model.
func appendKVs(t *testing.T, st *statestore.Store, model map[string]int, start, n int) {
	t.Helper()
	for i := start; i < start+n; i++ {
		rec := kv{K: fmt.Sprintf("k%02d", i%17), V: i}
		model[rec.K] = rec.V
		b, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Append(b); err != nil {
			t.Fatal(err)
		}
	}
}

// snapshotModel writes the model as a primary snapshot generation.
func snapshotModel(t *testing.T, st *statestore.Store, model map[string]int) {
	t.Helper()
	b, err := json.Marshal(model)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WriteSnapshot(b); err != nil {
		t.Fatal(err)
	}
}

// foldDir opens a closed store directory and folds snapshot + journal
// into the last-wins map — what a promotion would restore.
func foldDir(t *testing.T, dir string) map[string]int {
	t.Helper()
	st, err := statestore.Open(dir, statestore.Options{})
	if err != nil {
		t.Fatalf("fold %s: %v", dir, err)
	}
	defer func() {
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	rec := st.Recovery()
	out := make(map[string]int)
	if rec.HasSnapshot {
		if err := json.Unmarshal(rec.Snapshot, &out); err != nil {
			t.Fatalf("fold %s: snapshot: %v", dir, err)
		}
	}
	for _, raw := range rec.Records {
		var r kv
		if err := json.Unmarshal(raw, &r); err != nil {
			t.Fatalf("fold %s: record: %v", dir, err)
		}
		out[r.K] = r.V
	}
	return out
}

func sameState(t *testing.T, got, want map[string]int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("state has %d keys, want %d\ngot:  %v\nwant: %v", len(got), len(want), got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("state[%s]=%d, want %d", k, got[k], v)
		}
	}
}

// harness runs one standby (listening on loopback) and one shipper over
// the primary store, with fast-failover timings for tests.
type harness struct {
	t       *testing.T
	standby *Standby
	shipper *Shipper
	cancel  context.CancelFunc
	done    chan struct{}
	addr    string
}

func startHarness(t *testing.T, primary *statestore.Store, standbyDir string, mut func(*Config, *StandbyConfig)) *harness {
	t.Helper()
	h, err := tryStartHarness(t, primary, standbyDir, mut)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// tryStartHarness surfaces a NewStandby failure to the caller — the
// crash sweep needs it, because an armed CrashFS can kill the standby
// during its initial store open.
func tryStartHarness(t *testing.T, primary *statestore.Store, standbyDir string, mut func(*Config, *StandbyConfig)) (*harness, error) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	scfg := StandbyConfig{Dir: standbyDir, FrameTimeout: 2 * time.Second, SessionTimeout: 3 * time.Second}
	cfg := Config{
		Peers:        []string{lis.Addr().String()},
		DialTimeout:  2 * time.Second,
		FrameTimeout: 2 * time.Second,
		Heartbeat:    10 * time.Millisecond,
		BackoffBase:  5 * time.Millisecond,
		BackoffMax:   50 * time.Millisecond,
		PrimaryID:    "test-primary",
	}
	if mut != nil {
		mut(&cfg, &scfg)
	}
	sb, err := NewStandby(lis, scfg)
	if err != nil {
		lis.Close()
		return nil, err
	}
	ship := NewShipper(primary, cfg)
	ctx, cancel := context.WithCancel(context.Background())
	h := &harness{t: t, standby: sb, shipper: ship, cancel: cancel, done: make(chan struct{}), addr: lis.Addr().String()}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); sb.Run(ctx) }()
	go func() { defer wg.Done(); ship.Run(ctx) }()
	go func() { wg.Wait(); close(h.done) }()
	return h, nil
}

// stop tears the harness down and waits until the standby released its
// store directory.
func (h *harness) stop() {
	h.t.Helper()
	h.cancel()
	select {
	case <-h.done:
	case <-time.After(10 * time.Second):
		h.t.Fatal("harness did not shut down")
	}
}

func waitSynced(t *testing.T, s *Shipper) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.WaitSynced(ctx); err != nil {
		t.Fatalf("replication never synced: %v (status %+v)", err, s.Status())
	}
}

func TestShipSnapshotAndRecords(t *testing.T) {
	primaryDir, standbyDir := t.TempDir(), t.TempDir()
	st, err := statestore.Open(primaryDir, statestore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	model := make(map[string]int)
	appendKVs(t, st, model, 0, 40)
	snapshotModel(t, st, model)
	appendKVs(t, st, model, 40, 25)

	h := startHarness(t, st, standbyDir, nil)
	waitSynced(t, h.shipper)

	// More appends while live: the notify path, not just catch-up.
	appendKVs(t, st, model, 65, 25)
	waitSynced(t, h.shipper)

	status := h.standby.Status()
	h.stop()
	if status.Snapshots != 1 {
		t.Fatalf("standby applied %d snapshots, want 1 (status %+v)", status.Snapshots, status)
	}
	if status.Records == 0 {
		t.Fatal("standby applied no records")
	}
	sameState(t, foldDir(t, standbyDir), model)

	ps := h.shipper.Status()
	if len(ps) != 1 || ps[0].Snapshots != 1 || ps[0].Records == 0 {
		t.Fatalf("shipper status = %+v", ps)
	}
}

// TestLagKnownInGenerationZero is the regression test for the lag
// gauge's "unknown" sentinel: generation 0 is a legitimate generation
// for a young primary that has never snapshotted, so once heartbeats
// flow the standby must report a real (>= 0) lag, not -1.
func TestLagKnownInGenerationZero(t *testing.T) {
	primaryDir, standbyDir := t.TempDir(), t.TempDir()
	st, err := statestore.Open(primaryDir, statestore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	model := make(map[string]int)
	appendKVs(t, st, model, 0, 10) // no snapshot: the primary stays in generation 0

	h := startHarness(t, st, standbyDir, nil)
	waitSynced(t, h.shipper)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if status := h.standby.Status(); status.LagBytes >= 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("lag stayed unknown in generation 0 with heartbeats flowing: %+v", h.standby.Status())
		}
		time.Sleep(2 * time.Millisecond)
	}
	h.stop()
	sameState(t, foldDir(t, standbyDir), model)
}

func TestResumeAfterPrimaryRestart(t *testing.T) {
	primaryDir, standbyDir := t.TempDir(), t.TempDir()
	st, err := statestore.Open(primaryDir, statestore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	model := make(map[string]int)
	appendKVs(t, st, model, 0, 10)
	snapshotModel(t, st, model)

	h := startHarness(t, st, standbyDir, nil)
	waitSynced(t, h.shipper)
	h.stop()

	// A second shipper + second standby process over the same directories
	// and the same primary identity: the sidecar cursor must let the
	// stream resume without a second snapshot.
	appendKVs(t, st, model, 10, 10)
	h2 := startHarness(t, st, standbyDir, nil)
	waitSynced(t, h2.shipper)
	status := h2.standby.Status()
	h2.stop()
	if status.Snapshots != 0 {
		t.Fatalf("resumed session applied %d snapshots, want 0 (status %+v)", status.Snapshots, status)
	}
	sameState(t, foldDir(t, standbyDir), model)
}

// TestChaosLinkConverges is the armored-link proof: with corruption,
// resets, and truncations injected into every replication connection,
// the stream must still converge to the primary's exact state — via
// retries and snapshot resyncs, never via wrong bytes (every frame is
// CRC-checked, so corruption can only cost time).
func TestChaosLinkConverges(t *testing.T) {
	primaryDir, standbyDir := t.TempDir(), t.TempDir()
	st, err := statestore.Open(primaryDir, statestore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	inj := chaos.New(chaos.Config{Seed: 42, CorruptProb: 0.1, ResetProb: 0.05, TruncateProb: 0.05})
	model := make(map[string]int)
	appendKVs(t, st, model, 0, 30)
	snapshotModel(t, st, model)

	h := startHarness(t, st, standbyDir, func(cfg *Config, _ *StandbyConfig) {
		cfg.Dial = func(ctx context.Context, addr string) (net.Conn, error) {
			var d net.Dialer
			conn, err := d.DialContext(ctx, "tcp", addr)
			if err != nil {
				return nil, err
			}
			return inj.Conn(conn), nil
		}
	})
	for round := 0; round < 10; round++ {
		appendKVs(t, st, model, 30+round*20, 20)
		if round%3 == 2 {
			snapshotModel(t, st, model)
		}
		// Sync every round: each round forces record/ack/heartbeat frames
		// through the degraded link, so the injector gets real traffic to
		// corrupt and the shipper gets real failures to retry through.
		waitSynced(t, h.shipper)
	}
	h.stop()
	sameState(t, foldDir(t, standbyDir), model)
	if s := inj.Stats(); s.Corruptions+s.Resets+s.Truncations == 0 {
		t.Fatalf("chaos injected nothing: %+v", s)
	}
}

// rawSession hand-rolls the primary side of the wire protocol against a
// live standby, for tests that need sessions to die at precise points
// the real Shipper never produces.
type rawSession struct {
	t    *testing.T
	conn net.Conn
}

func dialStandby(t *testing.T, addr string) *rawSession {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	return &rawSession{t: t, conn: conn}
}

// hello sends the hello frame for identity id and returns the standby's
// cursor reply.
func (r *rawSession) hello(id string) cursorPayload {
	r.t.Helper()
	if err := writeJSONFrame(r.conn, 2*time.Second, fHello, helloPayload{Version: protocolVersion, Primary: id}); err != nil {
		r.t.Fatal(err)
	}
	typ, payload, err := readFrame(r.conn, 2*time.Second)
	if err != nil {
		r.t.Fatal(err)
	}
	if typ != fCursor {
		r.t.Fatalf("expected cursor frame, got type %d", typ)
	}
	var cur cursorPayload
	if err := json.Unmarshal(payload, &cur); err != nil {
		r.t.Fatal(err)
	}
	return cur
}

func (r *rawSession) send(typ byte, payload []byte) {
	r.t.Helper()
	if err := writeFrame(r.conn, 2*time.Second, typ, payload); err != nil {
		r.t.Fatal(err)
	}
}

// ack reads the standby's next ack frame and returns the applied cursor.
func (r *rawSession) ack() statestore.Cursor {
	r.t.Helper()
	typ, payload, err := readFrame(r.conn, 2*time.Second)
	if err != nil {
		r.t.Fatal(err)
	}
	if typ != fAck {
		r.t.Fatalf("expected ack frame, got type %d", typ)
	}
	c, err := decodeCursor(payload)
	if err != nil {
		r.t.Fatal(err)
	}
	return c
}

func (r *rawSession) close() { r.conn.Close() }

// TestReanchorAdoptionDeferred is the regression test for the
// half-re-anchor hole: a standby holding primary A's cursor negotiates
// a Reset with primary B, and the session dies before B's anchor frame
// arrives. The standby must keep answering with A's identity — so B's
// next hello re-negotiates the Reset instead of resuming A's cursor
// against B's journal — and A itself must still be able to resume.
func TestReanchorAdoptionDeferred(t *testing.T) {
	dir := t.TempDir()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sb, err := NewStandby(lis, StandbyConfig{Dir: dir, FrameTimeout: 2 * time.Second, SessionTimeout: 3 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); sb.Run(ctx) }()
	defer func() { cancel(); <-done }()
	addr := lis.Addr().String()

	// Session 1: primary A anchors with a snapshot and ships a record.
	rec, err := json.Marshal(kv{K: "k00", V: 1})
	if err != nil {
		t.Fatal(err)
	}
	aCursor := statestore.Cursor{Gen: 3, Offset: int64(len(rec)) + 8}
	s1 := dialStandby(t, addr)
	if cur := s1.hello("primary-A"); !cur.Reset {
		t.Fatalf("fresh standby replied Reset=false: %+v", cur)
	}
	s1.send(fSnapshot, encodeSnapshot(3, []byte(`{"k17":9}`)))
	if got := s1.ack(); got.Gen != 3 {
		t.Fatalf("snapshot acked at %+v, want gen 3", got)
	}
	s1.send(fRecords, encodeRecords(aCursor, [][]byte{rec}))
	if got := s1.ack(); got != aCursor {
		t.Fatalf("records acked at %+v, want %+v", got, aCursor)
	}
	s1.close()

	// Session 2: primary B is told to Reset, then dies before anchoring.
	s2 := dialStandby(t, addr)
	if cur := s2.hello("primary-B"); !cur.Reset || cur.Primary != "primary-A" {
		t.Fatalf("new primary negotiation replied %+v, want Reset with primary-A's identity", cur)
	}
	s2.close()

	// Session 3: B again. Before the pending-adoption fix the standby had
	// already adopted B's identity in session 2, replied Reset=false, and
	// handed B primary A's cursor to resume — silent divergence.
	s3 := dialStandby(t, addr)
	if cur := s3.hello("primary-B"); !cur.Reset {
		t.Fatalf("half-re-anchored standby resumed the old primary's cursor for the new primary: %+v", cur)
	}
	// Records inside the pending window are a protocol violation: the
	// session must die without touching the store.
	s3.send(fRecords, encodeRecords(statestore.Cursor{Gen: 9, Offset: 1}, [][]byte{rec}))
	if _, _, err := readFrame(s3.conn, 2*time.Second); err == nil {
		t.Fatal("standby acked records sent before the re-anchor")
	}
	s3.close()

	// Session 4: A returns. Its history is untouched, so it resumes.
	s4 := dialStandby(t, addr)
	if cur := s4.hello("primary-A"); cur.Reset || cur.Gen != aCursor.Gen || cur.Offset != aCursor.Offset {
		t.Fatalf("original primary cannot resume its own cursor: %+v (want %+v)", cur, aCursor)
	}
	s4.close()

	// Session 5: B finally anchors; only now is its identity adopted.
	s5 := dialStandby(t, addr)
	if cur := s5.hello("primary-B"); !cur.Reset {
		t.Fatalf("expected Reset for primary-B, got %+v", cur)
	}
	s5.send(fSnapshot, encodeSnapshot(1, []byte(`{"k01":2}`)))
	if got := s5.ack(); got.Gen != 1 {
		t.Fatalf("snapshot acked at %+v, want gen 1", got)
	}
	s5.close()
	s6 := dialStandby(t, addr)
	if cur := s6.hello("primary-B"); cur.Reset || cur.Primary != "primary-B" || cur.Gen != 1 {
		t.Fatalf("anchored primary-B cannot resume: %+v", cur)
	}
	s6.close()
}

// TestStandbyCrashSweep drives the standby's apply path through a crash
// at every mutating filesystem operation (torn snapshot bodies, torn
// journal appends, skipped renames, a torn cursor sidecar) and asserts
// the directory always recovers — openable, and after a fresh standby
// session, exactly converged with the primary.
func TestStandbyCrashSweep(t *testing.T) {
	primaryDir := t.TempDir()
	st, err := statestore.Open(primaryDir, statestore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	model := make(map[string]int)
	appendKVs(t, st, model, 0, 12)
	snapshotModel(t, st, model)
	appendKVs(t, st, model, 12, 12)

	// Disarmed run to count the standby's mutating ops.
	ops := func() int {
		dir := t.TempDir()
		cfs := statestore.NewCrashFS(statestore.OSFS{}, 1)
		h := startHarness(t, st, dir, func(_ *Config, scfg *StandbyConfig) { scfg.FS = cfs })
		waitSynced(t, h.shipper)
		h.stop()
		sameState(t, foldDir(t, dir), model)
		return cfs.Ops()
	}()
	if ops < 5 {
		t.Fatalf("implausibly few standby ops: %d", ops)
	}
	if testing.Short() {
		t.Skipf("skipping %d-point sweep in -short", ops)
	}

	for n := 0; n < ops; n++ {
		n := n
		t.Run(fmt.Sprintf("crash-at-%d", n), func(t *testing.T) {
			dir := t.TempDir()
			cfs := statestore.NewCrashFS(statestore.OSFS{}, int64(100+n))
			cfs.CrashAt(n)
			h, err := tryStartHarness(t, st, dir, func(_ *Config, scfg *StandbyConfig) { scfg.FS = cfs })
			if err == nil {
				// Wait for the crash to fire (or for full sync when this
				// crash point lands after the workload's last op).
				deadline := time.Now().Add(20 * time.Second)
				for !cfs.Crashed() && !h.shipper.Synced() {
					if time.Now().After(deadline) {
						t.Fatal("neither crashed nor synced")
					}
					time.Sleep(time.Millisecond)
				}
				h.stop()
			} else if !cfs.Crashed() {
				// A startup failure must be the simulated crash, nothing else.
				t.Fatalf("standby failed to start without crashing: %v", err)
			}

			// The torn directory must recover like any crashed statestore.
			if _, err := statestore.Open(dir, statestore.Options{}); err != nil {
				t.Fatalf("crashed standby dir does not open: %v", err)
			}
			// Close it again before the fresh standby takes over.
			func() {
				st2, err := statestore.Open(dir, statestore.Options{})
				if err != nil {
					t.Fatal(err)
				}
				if err := st2.Close(); err != nil {
					t.Fatal(err)
				}
			}()

			// A fresh standby process over the same directory must converge:
			// resume when the cursor survived, wipe-and-resync when it did
			// not. Either way the end state is exact.
			h2 := startHarness(t, st, dir, nil)
			waitSynced(t, h2.shipper)
			h2.stop()
			sameState(t, foldDir(t, dir), model)
		})
	}
}
