package replication

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	mrand "math/rand"
	"net"
	"sync"
	"time"

	"tagwatch/internal/statestore"
)

// Config tunes a Shipper.
type Config struct {
	// Peers are the standby addresses to replicate to (host:port).
	Peers []string
	// Dial overrides the transport dial — the hook chaos tests and the
	// failover drill wrap with a fault injector. Nil uses net.Dialer.
	Dial func(ctx context.Context, addr string) (net.Conn, error)
	// DialTimeout bounds each connect attempt (default 5s).
	DialTimeout time.Duration
	// FrameTimeout bounds each frame write and the hello/cursor reads
	// (default 5s) so a stalled link fails the session instead of
	// wedging the shipper.
	FrameTimeout time.Duration
	// Heartbeat spaces primary→standby heartbeats while the stream is
	// idle (default 1s). Each heartbeat is acked, so it doubles as the
	// liveness probe for both directions.
	Heartbeat time.Duration
	// AckTimeout is how long a session survives without any ack before
	// it is torn down and redialed (default 3×Heartbeat + FrameTimeout).
	AckTimeout time.Duration
	// BackoffBase and BackoffMax bound the redial delay: doubling from
	// the base per consecutive failure, saturating at the max, with
	// ±20% jitter (defaults 100ms, 5s — replication reconnects fast).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// MaxBatchBytes bounds the journal bytes per records frame
	// (default 1 MiB).
	MaxBatchBytes int64
	// PrimaryID identifies this primary instance to standbys; a standby
	// holding another identity's cursor is re-anchored instead of
	// resumed. Empty generates a random identity.
	PrimaryID string
}

func (c Config) withDefaults() Config {
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.FrameTimeout <= 0 {
		c.FrameTimeout = 5 * time.Second
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = time.Second
	}
	if c.AckTimeout <= 0 {
		c.AckTimeout = 3*c.Heartbeat + c.FrameTimeout
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 100 * time.Millisecond
	}
	if c.BackoffMax < c.BackoffBase {
		c.BackoffMax = 5 * time.Second
	}
	if c.MaxBatchBytes <= 0 {
		c.MaxBatchBytes = 1 << 20
	}
	if c.PrimaryID == "" {
		var b [8]byte
		if _, err := rand.Read(b[:]); err != nil {
			// crypto/rand failing is effectively fatal elsewhere; a fixed
			// fallback identity still replicates, it just can't tell two
			// such primaries apart.
			c.PrimaryID = "primary-0"
		} else {
			c.PrimaryID = hex.EncodeToString(b[:])
		}
	}
	return c
}

// PeerStatus is one standby's replication state as the primary sees it.
type PeerStatus struct {
	Addr      string `json:"addr"`
	State     string `json:"state"` // dialing | backoff | resync | streaming
	Connected bool   `json:"connected"`
	// Sent is the primary cursor shipped through; Acked the cursor the
	// standby confirmed applied.
	Sent  statestore.Cursor `json:"sent"`
	Acked statestore.Cursor `json:"acked"`
	// LagBytes is committed-minus-acked within the same generation; -1
	// when the gap spans generations (a resync is in flight or due).
	LagBytes int64 `json:"lag_bytes"`
	// LastAckAgeMS is milliseconds since the last ack (-1 before any).
	LastAckAgeMS int64  `json:"last_ack_age_ms"`
	Reconnects   uint64 `json:"reconnects"`
	Resyncs      uint64 `json:"resyncs"`
	Snapshots    uint64 `json:"snapshots_sent"`
	Records      uint64 `json:"records_sent"`
	LastError    string `json:"last_error,omitempty"`
}

// Shipper streams a statestore's journal to every configured peer, one
// session goroutine per peer. It never blocks the store's append path:
// all reads pull committed bytes from disk through a JournalReader.
type Shipper struct {
	cfg   Config
	store *statestore.Store
	peers []*peer
}

type peer struct {
	addr string

	mu       sync.Mutex
	state    string
	conn     net.Conn // live session conn, for Status/teardown
	sent     statestore.Cursor
	acked    statestore.Cursor
	lastAck  time.Time
	reconn   uint64
	resyncs  uint64
	snaps    uint64
	records  uint64
	lastErr  string
	everConn bool
}

// NewShipper builds a shipper over the store. Call Run to start.
func NewShipper(store *statestore.Store, cfg Config) *Shipper {
	cfg = cfg.withDefaults()
	s := &Shipper{cfg: cfg, store: store}
	for _, addr := range cfg.Peers {
		s.peers = append(s.peers, &peer{addr: addr, state: "dialing"})
	}
	return s
}

// Run replicates until ctx is cancelled, redialing failed sessions
// forever. It blocks; run it in a goroutine.
func (s *Shipper) Run(ctx context.Context) {
	var wg sync.WaitGroup
	for _, p := range s.peers {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.runPeer(ctx, p)
		}()
	}
	wg.Wait()
}

// Status snapshots every peer's replication state.
func (s *Shipper) Status() []PeerStatus {
	committed := s.store.Committed()
	now := time.Now() //tagwatch:allow-wallclock replication lag is a wall-clock observable, not sim state
	out := make([]PeerStatus, 0, len(s.peers))
	for _, p := range s.peers {
		p.mu.Lock()
		ps := PeerStatus{
			Addr:         p.addr,
			State:        p.state,
			Connected:    p.conn != nil,
			Sent:         p.sent,
			Acked:        p.acked,
			LagBytes:     -1,
			LastAckAgeMS: -1,
			Reconnects:   p.reconn,
			Resyncs:      p.resyncs,
			Snapshots:    p.snaps,
			Records:      p.records,
			LastError:    p.lastErr,
		}
		if p.acked.Gen == committed.Gen {
			ps.LagBytes = committed.Offset - p.acked.Offset
		}
		if !p.lastAck.IsZero() {
			ps.LastAckAgeMS = now.Sub(p.lastAck).Milliseconds()
		}
		p.mu.Unlock()
		out = append(out, ps)
	}
	return out
}

// Synced reports whether every peer has acked the store's committed
// cursor. Trivially true with no peers.
func (s *Shipper) Synced() bool {
	committed := s.store.Committed()
	for _, p := range s.peers {
		p.mu.Lock()
		ok := p.conn != nil && p.acked == committed
		p.mu.Unlock()
		if !ok {
			return false
		}
	}
	return true
}

// WaitSynced blocks until Synced or ctx ends — the quiesce point a
// planned failover (or the drill) uses to empty the in-flight window.
func (s *Shipper) WaitSynced(ctx context.Context) error {
	tick := time.NewTicker(5 * time.Millisecond) //tagwatch:allow-wallclock quiesce poll over a real TCP link
	defer tick.Stop()
	for {
		if s.Synced() {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("replication: wait synced: %w", ctx.Err())
		case <-tick.C:
		}
	}
}

// runPeer is one peer's dial/session/backoff loop.
func (s *Shipper) runPeer(ctx context.Context, p *peer) {
	// Jitter stream seeded per peer identity so two peers never share a
	// backoff schedule (replication is wall-clock land; determinism in
	// tests comes from the chaos injector, not from backoff timing).
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s", s.cfg.PrimaryID, p.addr)
	rng := mrand.New(mrand.NewSource(int64(h.Sum64())))
	backoff := s.cfg.BackoffBase
	for ctx.Err() == nil {
		p.setState("dialing")
		conn, err := s.dial(ctx, p.addr)
		if err == nil {
			p.connected(conn)
			err = s.session(ctx, p, conn)
			conn.Close()
			p.disconnected(err)
		} else {
			p.failed(err)
		}
		if ctx.Err() != nil {
			return
		}
		if err == nil {
			backoff = s.cfg.BackoffBase
			continue
		}
		p.setState("backoff")
		jitter := 1 + 0.2*(2*rng.Float64()-1)
		delay := time.Duration(float64(backoff) * jitter)
		backoff = min(backoff*2, s.cfg.BackoffMax)
		select {
		case <-ctx.Done():
			return
		case <-time.After(delay): //tagwatch:allow-wallclock redial backoff paces a real socket (jitter is already seeded)
		}
	}
}

func (s *Shipper) dial(ctx context.Context, addr string) (net.Conn, error) {
	dctx, cancel := context.WithTimeout(ctx, s.cfg.DialTimeout)
	defer cancel()
	if s.cfg.Dial != nil {
		return s.cfg.Dial(dctx, addr)
	}
	var d net.Dialer
	return d.DialContext(dctx, "tcp", addr)
}

// session runs one connected replication session: hello/cursor
// negotiation, then stream batches + heartbeats until the link or ctx
// dies. The returned error is nil only on ctx cancellation.
func (s *Shipper) session(ctx context.Context, p *peer, conn net.Conn) error {
	if err := writeJSONFrame(conn, s.cfg.FrameTimeout, fHello, helloPayload{
		Version: protocolVersion,
		Primary: s.cfg.PrimaryID,
	}); err != nil {
		return fmt.Errorf("replication: send hello: %w", err)
	}
	typ, payload, err := readFrame(conn, s.cfg.FrameTimeout)
	if err != nil {
		return fmt.Errorf("replication: read cursor: %w", err)
	}
	if typ != fCursor {
		return fmt.Errorf("replication: expected cursor frame, got type %d", typ)
	}
	var cur cursorPayload
	if err := json.Unmarshal(payload, &cur); err != nil {
		return fmt.Errorf("replication: decode cursor: %w", err)
	}

	var reader *statestore.JournalReader
	defer func() {
		if reader != nil {
			reader.Close()
		}
	}()
	if cur.Reset || cur.Primary != s.cfg.PrimaryID {
		reader, err = s.resync(p, conn)
	} else {
		// Resume optimistically from the standby's cursor; if retention
		// GC already collected it, the first Poll reports ErrCursorGone
		// and the stream re-anchors below.
		from := statestore.Cursor{Gen: cur.Gen, Offset: cur.Offset}
		reader = s.store.Tail(from, statestore.TailOptions{MaxBatchBytes: s.cfg.MaxBatchBytes})
		p.advanceSent(from)
		p.setState("streaming")
	}
	if err != nil {
		return err
	}

	// Ack reader: drains standby→primary frames, updating the applied
	// cursor. Its failure (or silence past AckTimeout) closes the conn,
	// which unblocks any in-flight write and ends the session.
	ackErr := make(chan error, 1)
	//tagwatch:allow-leak the read loop's shutdown signal is the conn itself: session defers conn.Close, which fails the blocking readFrame
	go func() {
		for {
			typ, payload, err := readFrame(conn, s.cfg.AckTimeout)
			if err != nil {
				ackErr <- err
				return
			}
			if typ != fAck {
				ackErr <- fmt.Errorf("replication: unexpected frame type %d from standby", typ)
				return
			}
			c, err := decodeCursor(payload)
			if err != nil {
				ackErr <- err
				return
			}
			p.ackedThrough(c)
		}
	}()
	defer conn.Close() // ensure the ack goroutine unblocks on any exit path

	heartbeat := time.NewTicker(s.cfg.Heartbeat) //tagwatch:allow-wallclock liveness heartbeat over a real TCP link
	defer heartbeat.Stop()
	for {
		// Drain everything committed, in bounded frames.
		for {
			records, next, err := reader.Poll()
			if errors.Is(err, statestore.ErrCursorGone) {
				reader.Close()
				reader, err = s.resync(p, conn)
				if err != nil {
					return err
				}
				continue
			}
			if err != nil {
				return fmt.Errorf("replication: tail journal: %w", err)
			}
			if len(records) == 0 {
				break
			}
			if err := writeFrame(conn, s.cfg.FrameTimeout, fRecords, encodeRecords(next, records)); err != nil {
				return fmt.Errorf("replication: send records: %w", err)
			}
			p.sentRecords(next, len(records))
		}
		select {
		case <-ctx.Done():
			return nil
		case err := <-ackErr:
			return fmt.Errorf("replication: ack stream: %w", err)
		case <-reader.Notify():
		case <-heartbeat.C:
			if err := writeFrame(conn, s.cfg.FrameTimeout, fHeartbeat, encodeCursor(s.store.Committed())); err != nil {
				return fmt.Errorf("replication: send heartbeat: %w", err)
			}
		}
	}
}

// resync re-anchors the standby: ship the newest snapshot (or a reset
// when the primary has none) and tail from its cursor.
func (s *Shipper) resync(p *peer, conn net.Conn) (*statestore.JournalReader, error) {
	p.setState("resync")
	snap, has, from, err := s.store.ResyncSource()
	if err != nil {
		return nil, fmt.Errorf("replication: resync source: %w", err)
	}
	if has {
		if err := writeFrame(conn, s.cfg.FrameTimeout, fSnapshot, encodeSnapshot(from.Gen, snap)); err != nil {
			return nil, fmt.Errorf("replication: send snapshot: %w", err)
		}
	} else {
		if err := writeFrame(conn, s.cfg.FrameTimeout, fReset, encodeCursor(from)); err != nil {
			return nil, fmt.Errorf("replication: send reset: %w", err)
		}
	}
	p.resynced(from, has)
	p.setState("streaming")
	return s.store.Tail(from, statestore.TailOptions{MaxBatchBytes: s.cfg.MaxBatchBytes}), nil
}

func (p *peer) setState(state string) {
	p.mu.Lock()
	p.state = state
	p.mu.Unlock()
}

func (p *peer) connected(conn net.Conn) {
	p.mu.Lock()
	p.conn = conn
	if p.everConn {
		p.reconn++
	}
	p.everConn = true
	// A new session negotiates from scratch; prior ack state is void.
	p.sent = statestore.Cursor{}
	p.acked = statestore.Cursor{}
	p.lastAck = time.Time{}
	p.mu.Unlock()
}

func (p *peer) disconnected(err error) {
	p.mu.Lock()
	p.conn = nil
	if err != nil {
		p.lastErr = err.Error()
	}
	p.mu.Unlock()
}

func (p *peer) failed(err error) {
	p.mu.Lock()
	p.lastErr = err.Error()
	p.mu.Unlock()
}

func (p *peer) advanceSent(c statestore.Cursor) {
	p.mu.Lock()
	p.sent = c
	// Resuming means the standby already applied through the cursor.
	p.acked = c
	p.lastAck = time.Now() //tagwatch:allow-wallclock ack age is a wall-clock observable, not sim state
	p.mu.Unlock()
}

func (p *peer) sentRecords(end statestore.Cursor, n int) {
	p.mu.Lock()
	p.sent = end
	p.records += uint64(n)
	p.mu.Unlock()
}

func (p *peer) resynced(from statestore.Cursor, snapshot bool) {
	p.mu.Lock()
	p.resyncs++
	if snapshot {
		p.snaps++
	}
	p.sent = from
	p.acked = statestore.Cursor{}
	p.mu.Unlock()
}

func (p *peer) ackedThrough(c statestore.Cursor) {
	p.mu.Lock()
	if p.acked.Before(c) {
		p.acked = c
	}
	p.lastAck = time.Now() //tagwatch:allow-wallclock ack age is a wall-clock observable, not sim state
	p.mu.Unlock()
}
