// Package replication ships a primary fleetd's durable registry to hot
// standbys: the statestore journal IS the replication stream (absolute,
// last-wins records), so a standby that applies shipped snapshots and
// journal batches into its own statestore can be promoted to a live
// fleet.Manager at any moment by restoring from its store directory.
//
// The wire protocol is a length-prefixed, CRC-framed exchange over one
// TCP connection per peer, armored for hostile links:
//
//   - the primary dials (standbys listen), retrying with exponential
//     backoff + jitter;
//   - every frame carries a crc32c over its payload plus a crc32c over
//     the header itself (type + length), and is read/written under a
//     per-frame deadline, so corruption and stalls surface as session
//     errors instead of hangs, misparses, or garbage-length
//     allocations;
//   - sessions open with a cursor negotiation: the standby reports the
//     primary's (generation, offset) it has applied through, and the
//     primary resumes the journal tail there — or re-anchors with a
//     fresh snapshot (or a reset for an empty primary) when the cursor
//     is gone, from a different primary, or the standby asked to start
//     over;
//   - heartbeats flow primary→standby and acks standby→primary, giving
//     both sides replication-lag visibility and a liveness watchdog;
//   - the primary never blocks its cycle hot path on a slow or dead
//     peer: shipping pulls committed bytes from disk (ship-behind), and
//     a peer that falls past retention GC is re-anchored by snapshot
//     (drop-to-snapshot-resync) instead of back-pressuring the WAL.
package replication

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"time"

	"tagwatch/internal/statestore"
)

// protocolVersion is the replication wire protocol version, checked in
// the hello exchange.
const protocolVersion = 1

// Frame types. Every frame is type(1) | payloadLen(u32 LE) |
// crc32c(payload)(u32 LE) | crc32c(header)(u32 LE) | payload, where the
// header checksum covers the first 9 bytes. Checksumming the header
// means a corrupted length field is rejected before it is believed —
// without it, a single flipped length byte under the cap would trigger
// an up-to-maxFramePayload allocation per corrupt frame before the
// payload CRC could tear the session down.
const (
	fHello     = byte(1) // primary→standby: JSON helloPayload
	fCursor    = byte(2) // standby→primary: JSON cursorPayload
	fSnapshot  = byte(3) // primary→standby: u64 gen | snapshot bytes
	fReset     = byte(4) // primary→standby: u64 gen (start empty there)
	fRecords   = byte(5) // primary→standby: u64 endGen | u64 endOff | u32 n | n×(u32 len | bytes)
	fHeartbeat = byte(6) // primary→standby: u64 gen | u64 off (committed)
	fAck       = byte(7) // standby→primary: u64 gen | u64 off (applied)
)

const (
	frameHeaderLen = 13
	// frameHeaderCRCOff is where the header's own crc32c lives; it
	// covers the bytes before it (type + length + payload CRC).
	frameHeaderCRCOff = 9
	// maxFramePayload bounds one frame. Snapshots dominate; the
	// statestore itself refuses records past 256 MiB, so a 1 GiB frame
	// cap rejects garbage lengths without constraining real payloads.
	maxFramePayload = 1 << 30
	// maxRecordsPerFrame bounds the record count a records frame may
	// declare: each record costs at least its 4-byte length prefix, so
	// a frame under maxFramePayload cannot legitimately carry more. A
	// corrupt count is rejected here instead of sizing an allocation.
	maxRecordsPerFrame = maxFramePayload / 4
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// errFrameCorrupt reports a frame whose checksum or framing failed —
// the link corrupted bytes in flight and the session must be torn down
// (the retry/resync machinery takes it from there).
var errFrameCorrupt = errors.New("replication: corrupt frame")

// helloPayload opens a session (primary → standby).
type helloPayload struct {
	Version int    `json:"version"`
	Primary string `json:"primary"` // primary instance identity (random per process)
}

// cursorPayload answers the hello (standby → primary) with the resume
// position. Reset true means the standby has nothing usable (fresh,
// wiped after an apply failure, or holding another primary's history)
// and must be re-anchored.
type cursorPayload struct {
	Primary string `json:"primary,omitempty"` // identity the cursor belongs to
	Reset   bool   `json:"reset,omitempty"`
	Gen     uint64 `json:"gen"`
	Offset  int64  `json:"offset"`
}

// writeFrame writes one frame under the deadline. A zero deadline
// disables it.
func writeFrame(conn net.Conn, deadline time.Duration, typ byte, payload []byte) error {
	if len(payload) > maxFramePayload {
		return fmt.Errorf("replication: frame payload %d bytes exceeds cap", len(payload))
	}
	// Arm unconditionally: the zero time means "no deadline", which also
	// clears a stale deadline a previous frame left armed.
	var dl time.Time
	if deadline > 0 {
		dl = time.Now().Add(deadline) //tagwatch:allow-wallclock socket deadlines anchor to the wall clock by contract
	}
	if err := conn.SetWriteDeadline(dl); err != nil {
		return err
	}
	hdr := make([]byte, frameHeaderLen, frameHeaderLen+len(payload))
	hdr[0] = typ
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[5:9], crc32.Checksum(payload, castagnoli))
	binary.LittleEndian.PutUint32(hdr[frameHeaderCRCOff:], crc32.Checksum(hdr[:frameHeaderCRCOff], castagnoli))
	// One write per frame: interleaving-safe if a future caller ever
	// shares the conn, and one fewer syscall on the hot path.
	_, err := conn.Write(append(hdr, payload...))
	return err
}

// readFrame reads one frame under the deadline, verifying the checksum.
// A zero deadline disables it.
func readFrame(conn net.Conn, deadline time.Duration) (typ byte, payload []byte, err error) {
	// Arm unconditionally, mirroring writeFrame: zero clears any stale
	// deadline instead of silently inheriting it.
	var dl time.Time
	if deadline > 0 {
		dl = time.Now().Add(deadline) //tagwatch:allow-wallclock socket deadlines anchor to the wall clock by contract
	}
	if err := conn.SetReadDeadline(dl); err != nil {
		return 0, nil, err
	}
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return 0, nil, err
	}
	// Validate the header before believing its length field: the header
	// CRC is what keeps a corrupted length from provoking a huge
	// allocation that only the payload CRC would catch.
	if crc32.Checksum(hdr[:frameHeaderCRCOff], castagnoli) != binary.LittleEndian.Uint32(hdr[frameHeaderCRCOff:]) {
		return 0, nil, fmt.Errorf("%w (header checksum mismatch)", errFrameCorrupt)
	}
	length := binary.LittleEndian.Uint32(hdr[1:5])
	wantCRC := binary.LittleEndian.Uint32(hdr[5:9])
	if length > maxFramePayload {
		return 0, nil, fmt.Errorf("%w (length %d)", errFrameCorrupt, length)
	}
	payload = make([]byte, length)
	if _, err := io.ReadFull(conn, payload); err != nil {
		return 0, nil, err
	}
	if crc32.Checksum(payload, castagnoli) != wantCRC {
		return 0, nil, fmt.Errorf("%w (checksum mismatch on type %d)", errFrameCorrupt, hdr[0])
	}
	return hdr[0], payload, nil
}

// writeJSONFrame marshals v and writes it as one frame.
func writeJSONFrame(conn net.Conn, deadline time.Duration, typ byte, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return writeFrame(conn, deadline, typ, b)
}

// encodeCursor encodes a statestore cursor as u64 gen | u64 off.
func encodeCursor(c statestore.Cursor) []byte {
	b := make([]byte, 16)
	binary.LittleEndian.PutUint64(b[0:8], c.Gen)
	binary.LittleEndian.PutUint64(b[8:16], uint64(c.Offset))
	return b
}

// decodeCursor decodes encodeCursor's framing.
func decodeCursor(b []byte) (statestore.Cursor, error) {
	if len(b) != 16 {
		return statestore.Cursor{}, fmt.Errorf("%w (cursor payload %d bytes)", errFrameCorrupt, len(b))
	}
	return statestore.Cursor{
		Gen:    binary.LittleEndian.Uint64(b[0:8]),
		Offset: int64(binary.LittleEndian.Uint64(b[8:16])),
	}, nil
}

// encodeRecords encodes a journal batch: the cursor after the batch,
// then the framed records.
func encodeRecords(end statestore.Cursor, records [][]byte) []byte {
	n := 20
	for _, r := range records {
		n += 4 + len(r)
	}
	b := make([]byte, 0, n)
	b = append(b, encodeCursor(end)...)
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(records)))
	b = append(b, u32[:]...)
	for _, r := range records {
		binary.LittleEndian.PutUint32(u32[:], uint32(len(r)))
		b = append(b, u32[:]...)
		b = append(b, r...)
	}
	return b
}

// decodeRecords decodes encodeRecords' framing.
func decodeRecords(b []byte) (end statestore.Cursor, records [][]byte, err error) {
	if len(b) < 20 {
		return end, nil, fmt.Errorf("%w (records payload %d bytes)", errFrameCorrupt, len(b))
	}
	end, err = decodeCursor(b[:16])
	if err != nil {
		return end, nil, err
	}
	count := binary.LittleEndian.Uint32(b[16:20])
	b = b[20:]
	// Believe the count only after bounding it twice: by the protocol
	// cap, and by what the payload could physically hold (4 bytes of
	// length prefix per record) — otherwise a corrupt count buys an
	// up-to-32 GiB slice-header allocation before the loop below would
	// notice the payload is short.
	if count > maxRecordsPerFrame || int64(count) > int64(len(b))/4 {
		return end, nil, fmt.Errorf("%w (record count %d for %d payload bytes)", errFrameCorrupt, count, len(b))
	}
	records = make([][]byte, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(b) < 4 {
			return end, nil, fmt.Errorf("%w (truncated record header)", errFrameCorrupt)
		}
		length := binary.LittleEndian.Uint32(b[:4])
		b = b[4:]
		if uint32(len(b)) < length {
			return end, nil, fmt.Errorf("%w (truncated record payload)", errFrameCorrupt)
		}
		records = append(records, b[:length:length])
		b = b[length:]
	}
	if len(b) != 0 {
		return end, nil, fmt.Errorf("%w (%d trailing bytes)", errFrameCorrupt, len(b))
	}
	return end, records, nil
}

// encodeSnapshot prefixes the snapshot payload with the primary cursor
// generation journal replay resumes from.
func encodeSnapshot(gen uint64, payload []byte) []byte {
	b := make([]byte, 8, 8+len(payload))
	binary.LittleEndian.PutUint64(b, gen)
	return append(b, payload...)
}

// decodeSnapshot decodes encodeSnapshot's framing.
func decodeSnapshot(b []byte) (gen uint64, payload []byte, err error) {
	if len(b) < 8 {
		return 0, nil, fmt.Errorf("%w (snapshot payload %d bytes)", errFrameCorrupt, len(b))
	}
	return binary.LittleEndian.Uint64(b[:8]), b[8:], nil
}
