package replication

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	"tagwatch/internal/statestore"
)

// cursorFile is the standby's sidecar in the store directory: the
// primary identity + cursor applied through. It is written after each
// apply without an fsync — a stale (behind) cursor is the safe
// direction, because the journal grammar is absolute last-wins and
// re-applied records are idempotent. A torn write fails the checksum
// and reads as "no cursor", which just forces a snapshot resync.
const cursorFile = "standby-cursor.json"

// cursorState is the sidecar's on-disk shape.
type cursorState struct {
	Primary string `json:"primary"`
	Gen     uint64 `json:"gen"`
	Offset  int64  `json:"offset"`
	Sum     uint32 `json:"sum"` // crc32c over "primary|gen|offset"
}

func (c cursorState) checksum() uint32 {
	return crc32.Checksum([]byte(fmt.Sprintf("%s|%d|%d", c.Primary, c.Gen, c.Offset)), castagnoli)
}

// StandbyConfig tunes a Standby.
type StandbyConfig struct {
	// Dir is the store directory replicated state lands in — the same
	// directory a fleet.Manager restores from when the standby is
	// promoted.
	Dir string
	// Retain is the snapshot retention passed to the local store
	// (default 2).
	Retain int
	// FS overrides the store's filesystem (CrashFS in tests); nil uses
	// the real one.
	FS statestore.FS
	// FrameTimeout bounds each frame write (acks/cursor, default 5s).
	FrameTimeout time.Duration
	// SessionTimeout is how long a session survives without any frame
	// from the primary before it is dropped (default 15s; must exceed
	// the primary's heartbeat interval).
	SessionTimeout time.Duration
}

func (c StandbyConfig) withDefaults() StandbyConfig {
	if c.Retain <= 0 {
		c.Retain = 2
	}
	if c.FrameTimeout <= 0 {
		c.FrameTimeout = 5 * time.Second
	}
	if c.SessionTimeout <= 0 {
		c.SessionTimeout = 15 * time.Second
	}
	return c
}

// StandbyStatus is the standby's replication state.
type StandbyStatus struct {
	Primary   string            `json:"primary,omitempty"` // identity being followed
	Connected bool              `json:"connected"`
	Applied   statestore.Cursor `json:"applied"`           // primary cursor applied through
	Committed statestore.Cursor `json:"primary_committed"` // primary committed per last heartbeat
	// LagBytes is primary committed-minus-applied within one
	// generation; -1 when unknown or spanning generations.
	LagBytes int64 `json:"lag_bytes"`
	// LastFrameAgeMS is milliseconds since any primary frame (-1 before
	// the first).
	LastFrameAgeMS int64  `json:"last_frame_age_ms"`
	Sessions       uint64 `json:"sessions"`
	Snapshots      uint64 `json:"snapshots_applied"`
	Records        uint64 `json:"records_applied"`
	Wipes          uint64 `json:"wipes"`
	LastError      string `json:"last_error,omitempty"`
}

// Standby accepts one primary's replication stream and applies it into
// a local statestore, keeping the store directory promotable at every
// instant: snapshots land via the store's own atomic snapshot path and
// records via its fsync-acked journal, so a standby killed mid-apply
// recovers exactly like a primary would.
type Standby struct {
	cfg StandbyConfig
	lis net.Listener

	mu    sync.Mutex
	store *statestore.Store
	// primary is the identity whose journal the local store's content
	// (and the applied cursor) actually belongs to. When a session's
	// hello names a different primary, the new identity parks in pending
	// until an anchor frame (snapshot or reset) applies — adopting it at
	// negotiation time would let a session that dies pre-anchor leave
	// the new identity paired with the OLD primary's cursor, and the
	// next session would then resume that cursor against the new
	// primary's journal: silent divergence.
	primary   string
	pending   string
	applied   statestore.Cursor
	committed statestore.Cursor
	// hbSeen records that at least one heartbeat carried committed —
	// generation numbers start at 0, so "committed.Gen != 0" cannot
	// stand in for "a heartbeat arrived".
	hbSeen    bool
	lastFrame time.Time
	connected bool
	sessions  uint64
	snaps     uint64
	records   uint64
	wipes     uint64
	lastErr   string
	// failed marks the local store unusable (apply error or poison);
	// the next session wipes and starts over — the self-healing path.
	failed bool
}

// NewStandby opens (or creates) the store under cfg.Dir and serves
// replication sessions on lis. Call Run to start accepting.
func NewStandby(lis net.Listener, cfg StandbyConfig) (*Standby, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, errors.New("replication: standby requires a store directory")
	}
	st, err := statestore.Open(cfg.Dir, statestore.Options{Retain: cfg.Retain, FS: cfg.FS})
	if err != nil {
		return nil, fmt.Errorf("replication: open standby store: %w", err)
	}
	sb := &Standby{cfg: cfg, lis: lis, store: st}
	if cur, ok := sb.loadCursor(); ok {
		sb.primary = cur.Primary
		sb.applied = statestore.Cursor{Gen: cur.Gen, Offset: cur.Offset}
	} else {
		// No trustworthy cursor: whatever the store holds cannot be
		// positioned in the primary's journal, so demand a re-anchor.
		sb.failed = sb.store.Recovery().HasSnapshot || len(sb.store.Recovery().Records) > 0
	}
	return sb, nil
}

// Run accepts replication sessions until ctx ends, one at a time: a
// newly accepted connection preempts the current session (the primary
// redialing after a half-open link must not wait for the stale session
// to time out). Run closes the listener and the store on exit.
func (sb *Standby) Run(ctx context.Context) {
	// Closing the listener is how ctx cancellation unblocks Accept.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		select {
		case <-ctx.Done():
		case <-stop:
		}
		sb.lis.Close()
	}()
	var (
		sessionCancel context.CancelFunc
		sessionConn   net.Conn
		sessionWG     sync.WaitGroup
	)
	for {
		conn, err := sb.lis.Accept()
		if err != nil {
			break // listener closed (ctx) or fatal accept error
		}
		if sessionCancel != nil {
			// Sever the stale session's conn too: cancellation alone would
			// let a session blocked on a half-open (blackholed) link hold
			// the accept slot until its read deadline fires.
			sessionCancel()
			sessionConn.Close()
			sessionWG.Wait()
		}
		sctx, cancel := context.WithCancel(ctx)
		sessionCancel = cancel
		sessionConn = conn
		sessionWG.Add(1)
		go func() {
			defer sessionWG.Done()
			defer cancel()
			if err := sb.session(sctx, conn); err != nil && sctx.Err() == nil {
				sb.noteError(err)
			}
			conn.Close()
		}()
	}
	if sessionCancel != nil {
		sessionCancel()
		sessionConn.Close()
		sessionWG.Wait()
	}
	close(stop)
	wg.Wait()
	sb.mu.Lock()
	defer sb.mu.Unlock()
	if sb.store != nil {
		if err := sb.store.Close(); err != nil {
			sb.lastErr = err.Error()
		}
		sb.store = nil
	}
}

// Addr reports the listener address (useful with ":0" listeners).
func (sb *Standby) Addr() net.Addr { return sb.lis.Addr() }

// Status snapshots the standby's replication state.
func (sb *Standby) Status() StandbyStatus {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	st := StandbyStatus{
		Primary:        sb.primary,
		Connected:      sb.connected,
		Applied:        sb.applied,
		Committed:      sb.committed,
		LagBytes:       -1,
		LastFrameAgeMS: -1,
		Sessions:       sb.sessions,
		Snapshots:      sb.snaps,
		Records:        sb.records,
		Wipes:          sb.wipes,
		LastError:      sb.lastErr,
	}
	if sb.hbSeen && sb.committed.Gen == sb.applied.Gen {
		// committed is only as fresh as the last heartbeat, so records
		// applied since then can push applied past it. Being ahead of
		// the last known frontier is zero lag, not negative lag — and
		// never the -1 "unknown" sentinel.
		st.LagBytes = max(0, sb.committed.Offset-sb.applied.Offset)
	}
	if !sb.lastFrame.IsZero() {
		st.LastFrameAgeMS = time.Since(sb.lastFrame).Milliseconds() //tagwatch:allow-wallclock replication lag is a wall-clock observable, not sim state
	}
	return st
}

// session serves one primary connection: hello/cursor negotiation,
// then apply frames until the link, the primary, or ctx dies.
func (sb *Standby) session(ctx context.Context, conn net.Conn) error {
	sb.mu.Lock()
	sb.sessions++
	needWipe := sb.failed
	sb.mu.Unlock()
	if needWipe {
		if err := sb.wipe(); err != nil {
			return err
		}
	}

	typ, payload, err := readFrame(conn, sb.cfg.SessionTimeout)
	if err != nil {
		return fmt.Errorf("replication: read hello: %w", err)
	}
	if typ != fHello {
		return fmt.Errorf("replication: expected hello frame, got type %d", typ)
	}
	var hello helloPayload
	if err := json.Unmarshal(payload, &hello); err != nil {
		return fmt.Errorf("replication: decode hello: %w", err)
	}
	if hello.Version != protocolVersion {
		return fmt.Errorf("replication: protocol version %d, want %d", hello.Version, protocolVersion)
	}

	sb.mu.Lock()
	reply := cursorPayload{Primary: sb.primary, Gen: sb.applied.Gen, Offset: sb.applied.Offset}
	// Reset when there is nothing to resume: never-anchored, or the
	// stream belongs to a different primary instance.
	reply.Reset = sb.primary == "" || sb.primary != hello.Primary
	if reply.Reset {
		// Park the new identity until an anchor frame applies; until
		// then every reply keeps naming the old identity, so a session
		// that dies pre-anchor re-negotiates a Reset instead of letting
		// the next hello resume the old primary's cursor against the
		// new primary's journal. The on-disk sidecar is invalidated now
		// for the same reason: a crash in the re-anchor window must
		// read as "no cursor" on restart, never as the stale one.
		sb.pending = hello.Primary
		if err := sb.removeCursorLocked(); err != nil {
			sb.mu.Unlock()
			return err
		}
	} else {
		sb.pending = ""
	}
	sb.connected = true
	sb.mu.Unlock()
	defer func() {
		sb.mu.Lock()
		sb.connected = false
		sb.mu.Unlock()
	}()
	if err := writeJSONFrame(conn, sb.cfg.FrameTimeout, fCursor, reply); err != nil {
		return fmt.Errorf("replication: send cursor: %w", err)
	}

	for {
		if ctx.Err() != nil {
			return nil
		}
		typ, payload, err := readFrame(conn, sb.cfg.SessionTimeout)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return fmt.Errorf("replication: read frame: %w", err)
		}
		sb.mu.Lock()
		sb.lastFrame = time.Now() //tagwatch:allow-wallclock frame age is a wall-clock observable, not sim state
		pending := sb.pending
		sb.mu.Unlock()
		if typ == fRecords && pending != "" {
			// A Reset reply obliges the primary to anchor before it
			// streams; records applied on top of the old identity's
			// state would be exactly the divergence the pending window
			// exists to prevent. A protocol violation, not a store
			// failure: drop the session, keep the store resumable.
			return fmt.Errorf("replication: records frame from %q before its re-anchor", pending)
		}
		if err := sb.apply(typ, payload); err != nil {
			// The local store can no longer follow the stream (poisoned
			// write, decode failure). Mark it for a wipe-and-resync on the
			// next session and drop this one.
			sb.mu.Lock()
			sb.failed = true
			sb.mu.Unlock()
			return err
		}
		sb.mu.Lock()
		applied := sb.applied
		sb.mu.Unlock()
		if err := writeFrame(conn, sb.cfg.FrameTimeout, fAck, encodeCursor(applied)); err != nil {
			return fmt.Errorf("replication: send ack: %w", err)
		}
	}
}

// apply applies one primary frame to the local store.
func (sb *Standby) apply(typ byte, payload []byte) error {
	switch typ {
	case fSnapshot:
		gen, snap, err := decodeSnapshot(payload)
		if err != nil {
			return err
		}
		// The primary's snapshot becomes a local snapshot generation via
		// the store's own atomic path; local generation numbering is
		// independent of the primary's (the sidecar cursor is the only
		// mapping between the two).
		if err := sb.store.WriteSnapshot(snap); err != nil {
			return fmt.Errorf("replication: apply snapshot: %w", err)
		}
		sb.mu.Lock()
		sb.snaps++
		sb.applied = statestore.Cursor{Gen: gen}
		sb.adoptPendingLocked()
		sb.mu.Unlock()
		return sb.saveCursor()
	case fReset:
		from, err := decodeCursor(payload)
		if err != nil {
			return err
		}
		// The primary has no snapshot to anchor with: match its emptiness.
		if err := sb.wipe(); err != nil {
			return err
		}
		sb.mu.Lock()
		sb.applied = from
		sb.adoptPendingLocked()
		sb.mu.Unlock()
		return sb.saveCursor()
	case fRecords:
		end, records, err := decodeRecords(payload)
		if err != nil {
			return err
		}
		if err := sb.store.AppendBatch(records); err != nil {
			return fmt.Errorf("replication: apply records: %w", err)
		}
		sb.mu.Lock()
		sb.records += uint64(len(records))
		sb.applied = end
		sb.mu.Unlock()
		return sb.saveCursor()
	case fHeartbeat:
		committed, err := decodeCursor(payload)
		if err != nil {
			return err
		}
		sb.mu.Lock()
		sb.committed = committed
		sb.hbSeen = true
		sb.mu.Unlock()
		return nil
	default:
		return fmt.Errorf("replication: unexpected frame type %d from primary", typ)
	}
}

// adoptPendingLocked commits a parked identity switch once an anchor
// frame has applied: only now does the store's content belong to the
// new primary's journal, so only now may the cursor. Heartbeat state
// from the old primary is meaningless against the new journal and is
// dropped with it.
func (sb *Standby) adoptPendingLocked() {
	if sb.pending == "" {
		return
	}
	sb.primary = sb.pending
	sb.pending = ""
	sb.committed = statestore.Cursor{}
	sb.hbSeen = false
}

// Close releases the listener and the store without serving any
// sessions — the teardown path for a Standby that was constructed but
// never Run (Run itself closes both on exit). Idempotent, and a no-op
// for whatever Run already released.
func (sb *Standby) Close() error {
	_ = sb.lis.Close() //tagwatch:allow-droppederr second close after Run (or a repeat Close) is the expected path
	sb.mu.Lock()
	defer sb.mu.Unlock()
	if sb.store == nil {
		return nil
	}
	err := sb.store.Close()
	sb.store = nil
	if err != nil {
		sb.lastErr = err.Error()
		return fmt.Errorf("replication: close standby store: %w", err)
	}
	return nil
}

// wipe discards the local store and starts empty: close, remove every
// store file plus the cursor sidecar, reopen.
func (sb *Standby) wipe() error {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	if sb.store != nil {
		// A poisoned store still closes its handles; the error is
		// expected here and the wipe is the recovery.
		_ = sb.store.Close() //tagwatch:allow-droppederr wiping anyway; close failure cannot matter
		sb.store = nil
	}
	if err := statestore.RemoveAll(sb.cfg.Dir, sb.cfg.FS); err != nil {
		return fmt.Errorf("replication: wipe standby store: %w", err)
	}
	if err := sb.removeCursorLocked(); err != nil {
		return err
	}
	st, err := statestore.Open(sb.cfg.Dir, statestore.Options{Retain: sb.cfg.Retain, FS: sb.cfg.FS})
	if err != nil {
		return fmt.Errorf("replication: reopen standby store: %w", err)
	}
	sb.store = st
	sb.applied = statestore.Cursor{}
	sb.failed = false
	sb.wipes++
	return nil
}

func (sb *Standby) noteError(err error) {
	sb.mu.Lock()
	sb.lastErr = err.Error()
	sb.mu.Unlock()
}

// loadCursor reads the sidecar; ok is false when it is absent, torn, or
// fails its checksum.
func (sb *Standby) loadCursor() (cursorState, bool) {
	path := filepath.Join(sb.cfg.Dir, cursorFile)
	var data []byte
	var err error
	if sb.cfg.FS != nil {
		data, err = sb.cfg.FS.ReadFile(path)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return cursorState{}, false
	}
	var cur cursorState
	if json.Unmarshal(data, &cur) != nil || cur.Sum != cur.checksum() || cur.Primary == "" {
		return cursorState{}, false
	}
	return cur, true
}

// saveCursor writes the sidecar after an apply. Not fsynced: losing it
// in a crash costs a resync, never correctness.
func (sb *Standby) saveCursor() error {
	sb.mu.Lock()
	cur := cursorState{Primary: sb.primary, Gen: sb.applied.Gen, Offset: sb.applied.Offset}
	sb.mu.Unlock()
	cur.Sum = cur.checksum()
	data, err := json.Marshal(cur)
	if err != nil {
		return err
	}
	path := filepath.Join(sb.cfg.Dir, cursorFile)
	if sb.cfg.FS != nil {
		f, err := sb.cfg.FS.Create(path)
		if err != nil {
			return fmt.Errorf("replication: save cursor: %w", err)
		}
		if _, err := f.Write(data); err != nil {
			f.Close()
			return fmt.Errorf("replication: save cursor: %w", err)
		}
		return f.Close()
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("replication: save cursor: %w", err)
	}
	return nil
}

func (sb *Standby) removeCursorLocked() error {
	path := filepath.Join(sb.cfg.Dir, cursorFile)
	var err error
	if sb.cfg.FS != nil {
		err = sb.cfg.FS.Remove(path)
	} else {
		err = os.Remove(path)
	}
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("replication: remove cursor sidecar: %w", err)
	}
	return nil
}
