package replication

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"net"
	"testing"
	"time"
)

// TestFrameRoundTrip pins the wire layout end to end.
func TestFrameRoundTrip(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	payload := []byte("the journal is the replication format")
	errc := make(chan error, 1)
	go func() { errc <- writeFrame(server, time.Second, fRecords, payload) }()
	typ, got, err := readFrame(client, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if typ != fRecords || string(got) != string(payload) {
		t.Fatalf("round trip gave type %d payload %q", typ, got)
	}
}

// TestFrameRejectsCorruptHeader is the regression test for the
// unprotected length field: a header whose length byte flipped in
// flight must fail the header checksum — before the fix the corrupted
// length was believed, buying an up-to-1 GiB allocation per corrupt
// frame that only the payload CRC would eventually catch.
func TestFrameRejectsCorruptHeader(t *testing.T) {
	payload := []byte("hb")
	hdr := make([]byte, frameHeaderLen, frameHeaderLen+len(payload))
	hdr[0] = fHeartbeat
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[5:9], crc32.Checksum(payload, castagnoli))
	binary.LittleEndian.PutUint32(hdr[frameHeaderCRCOff:], crc32.Checksum(hdr[:frameHeaderCRCOff], castagnoli))
	// Flip a high length byte after the checksums were taken: the frame
	// now claims a ~512 MiB payload.
	hdr[4] ^= 0x20

	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	go func() {
		_, _ = server.Write(append(hdr, payload...)) // reader side is under test
	}()
	_, _, err := readFrame(client, time.Second)
	if !errors.Is(err, errFrameCorrupt) {
		t.Fatalf("corrupt header gave %v, want errFrameCorrupt", err)
	}
}
