package aloha

import (
	"math/rand"
	"testing"
)

func meanSlots(t *testing.T, sim func(*rand.Rand, int) SlotTally, n, reps int) float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(n)))
	var total int
	for i := 0; i < reps; i++ {
		tally := sim(rng, n)
		if tally.Singles != n {
			t.Fatalf("resolution lost tags: %d singles for %d tags", tally.Singles, n)
		}
		if tally.Slots != tally.Empties+tally.Singles+tally.Collisions {
			t.Fatalf("tally inconsistent: %+v", tally)
		}
		total += tally.Slots
	}
	return float64(total) / float64(reps)
}

func TestTreeSplittingAsymptote(t *testing.T) {
	// Binary tree splitting needs ≈2.885·n slots for large n (classic
	// result of the Capetanakis analysis).
	m := meanSlots(t, SimulateTreeSlots, 200, 60)
	perTag := m / 200
	if perTag < 2.6 || perTag > 3.2 {
		t.Fatalf("tree slots/tag = %.3f, want ≈2.885", perTag)
	}
}

func TestDFSAAsymptote(t *testing.T) {
	// Ideal DFSA needs ≈e·n ≈ 2.718·n slots.
	m := meanSlots(t, SimulateDFSASlots, 200, 60)
	perTag := m / 200
	if perTag < 2.5 || perTag > 3.0 {
		t.Fatalf("DFSA slots/tag = %.3f, want ≈e", perTag)
	}
}

func TestDFSABeatsTreeSplitting(t *testing.T) {
	// The §2.3 conclusion quantified: the achievable protocols cluster
	// within ~10% of each other — "very limited room to improve the
	// reading rate by designing better anti-collision protocols".
	dfsa := meanSlots(t, SimulateDFSASlots, 150, 80)
	tree := meanSlots(t, SimulateTreeSlots, 150, 80)
	if dfsa >= tree {
		t.Fatalf("ideal DFSA (%.0f slots) must edge tree splitting (%.0f)", dfsa, tree)
	}
	if tree > 1.25*dfsa {
		t.Fatalf("protocols should be within ~10-25%%: DFSA %.0f vs tree %.0f", dfsa, tree)
	}
}

func TestFixedFSAWastesSlots(t *testing.T) {
	// A badly sized fixed frame is far worse than DFSA — the §2.1 baseline.
	dfsa := meanSlots(t, SimulateDFSASlots, 100, 40)
	tiny := meanSlots(t, func(r *rand.Rand, n int) SlotTally { return SimulateFSASlots(r, n, 8) }, 100, 40)
	huge := meanSlots(t, func(r *rand.Rand, n int) SlotTally { return SimulateFSASlots(r, n, 1024) }, 100, 40)
	if tiny < 1.5*dfsa {
		t.Fatalf("undersized FSA (%.0f) must be much worse than DFSA (%.0f)", tiny, dfsa)
	}
	if huge < 1.5*dfsa {
		t.Fatalf("oversized FSA (%.0f) must be much worse than DFSA (%.0f)", huge, dfsa)
	}
	// Fixed FSA sized to the initial population sits between: its frame
	// stays at n while the population drains, so the tail is empty-heavy —
	// the very inefficiency that makes the paper's coupon-collector model
	// (frame never shrinks) yield n·ln n rather than e·n.
	sized := meanSlots(t, func(r *rand.Rand, n int) SlotTally { return SimulateFSASlots(r, n, 100) }, 100, 40)
	if sized <= dfsa {
		t.Fatalf("fixed f=n FSA (%.0f) cannot beat DFSA (%.0f)", sized, dfsa)
	}
	if sized >= tiny || sized >= huge {
		t.Fatalf("f=n FSA (%.0f) must beat badly sized frames (%.0f, %.0f)", sized, tiny, huge)
	}
}

func TestSimulationEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if tally := SimulateTreeSlots(rng, 0); tally.Slots != 0 {
		t.Fatal("zero tags, zero slots")
	}
	if tally := SimulateTreeSlots(rng, 1); tally.Slots != 1 || tally.Singles != 1 {
		t.Fatalf("one tag: %+v", tally)
	}
	if tally := SimulateDFSASlots(rng, 1); tally.Singles != 1 {
		t.Fatalf("one tag DFSA: %+v", tally)
	}
	if tally := SimulateFSASlots(rng, 1, 0); tally.Singles != 1 {
		t.Fatalf("frame floor: %+v", tally)
	}
}

func BenchmarkAntiCollisionComparison(b *testing.B) {
	// Slots per tag across the protocol family at n=200 — reproduces the
	// §2.3 finding that Q-adaptive (≈DFSA) leaves little room.
	rng := rand.New(rand.NewSource(1))
	const n = 200
	for i := 0; i < b.N; i++ {
		dfsa := SimulateDFSASlots(rng, n)
		tree := SimulateTreeSlots(rng, n)
		fsa := SimulateFSASlots(rng, n, n)
		b.ReportMetric(float64(dfsa.Slots)/n, "dfsa-slots/tag")
		b.ReportMetric(float64(tree.Slots)/n, "tree-slots/tag")
		b.ReportMetric(float64(fsa.Slots)/n, "fsa-slots/tag")
	}
}
