package aloha

import (
	"math"
	"testing"
	"time"
)

func TestHarmonic(t *testing.T) {
	if Harmonic(1) != 1 {
		t.Fatal("H1")
	}
	if got := Harmonic(4); math.Abs(got-(1+0.5+1.0/3+0.25)) > 1e-12 {
		t.Fatalf("H4 = %v", got)
	}
	// H_n ≈ ln n + γ for large n.
	if got := Harmonic(10000); math.Abs(got-(math.Log(10000)+0.5772)) > 0.001 {
		t.Fatalf("H10000 = %v", got)
	}
	if Harmonic(0) != 0 {
		t.Fatal("H0 must be 0")
	}
}

func TestExpectedSlots(t *testing.T) {
	if ExpectedSlots(0) != 0 || ExpectedSlots(-1) != 0 {
		t.Fatal("degenerate populations")
	}
	if ExpectedSlots(1) != 1 {
		t.Fatal("one tag needs one slot")
	}
	// n·e·H_n grows super-linearly.
	if ExpectedSlots(40) <= 40*ExpectedSlots(1) {
		t.Fatal("E[F] must grow super-linearly")
	}
	want := 30 * math.E * Harmonic(30)
	if got := ExpectedSlots(30); math.Abs(got-want) > 1e-9 {
		t.Fatalf("E[F](30) = %v, want %v", got, want)
	}
}

func TestSingletonProbabilityMaximisedAtFEqualsN(t *testing.T) {
	// Eqn. 1 peaks at f = n with value ≈ 1/e.
	n := 50
	best := SingletonProbability(n, float64(n))
	if math.Abs(best-1/math.E) > 0.01 {
		t.Fatalf("q(f=n) = %v, want ≈1/e", best)
	}
	for _, f := range []float64{10, 25, 75, 200} {
		if SingletonProbability(n, f) > best+1e-9 {
			t.Fatalf("q(f=%v) exceeds the f=n maximum", f)
		}
	}
	if SingletonProbability(0, 10) != 0 || SingletonProbability(5, 0) != 0 {
		t.Fatal("degenerate inputs must be 0")
	}
}

func TestCostModelPaperNumbers(t *testing.T) {
	m := PaperCostModel()
	// IRR(1) = 1/(τ₀+τ̄) ≈ 52 Hz with the paper's constants; the paper
	// measures ≈63 Hz at n=1 (its model slightly overshoots there, as its
	// Fig. 2 shows).
	if irr := m.IRR(1); irr < 45 || irr > 60 {
		t.Fatalf("IRR(1) = %v Hz", irr)
	}
	// The headline: IRR collapses by ≈84%% from n=1 to n=40.
	drop := 1 - m.IRR(40)/m.IRR(1)
	if drop < 0.75 || drop > 0.92 {
		t.Fatalf("IRR drop at n=40 = %.2f, want ≈0.84", drop)
	}
	// And lands near the measured 12 Hz.
	if irr := m.IRR(40); irr < 8 || irr > 16 {
		t.Fatalf("IRR(40) = %v Hz, want ≈12", irr)
	}
}

func TestCostModelShape(t *testing.T) {
	m := PaperCostModel()
	if m.Cost(0) != m.Tau0 {
		t.Fatal("C(0) must be the bare start-up cost")
	}
	if m.Cost(1) != m.Tau0+m.TauBar {
		t.Fatal("C(1) = τ₀+τ̄")
	}
	for n := 2; n < 100; n++ {
		if m.Cost(n) <= m.Cost(n-1) {
			t.Fatalf("C must be strictly increasing at n=%d", n)
		}
	}
	if m.String() == "" {
		t.Fatal("String must render")
	}
	zero := CostModel{}
	if !math.IsInf(zero.IRR(5), 1) {
		t.Fatal("zero-cost model has infinite IRR")
	}
}

func TestCostBasisMatchesCost(t *testing.T) {
	m := PaperCostModel()
	for _, n := range []int{1, 2, 10, 40, 400} {
		want := float64(m.Tau0) + float64(m.TauBar)*CostBasis(n)
		if got := float64(m.Cost(n)); math.Abs(got-want) > float64(time.Microsecond) {
			t.Fatalf("Cost(%d) = %v, basis reconstruction %v", n, got, want)
		}
	}
	if CostBasis(0) != 1 || CostBasis(1) != 1 {
		t.Fatal("basis for n ≤ 1 is the unit regressor")
	}
}

func TestFixedQ(t *testing.T) {
	f := FixedQ{Q: 5}
	if f.BeginRound(100) != 5 {
		t.Fatal("fixed Q ignores the estimate")
	}
	if q, changed := f.OnSlot(Collision, 3); q != 5 || changed {
		t.Fatal("fixed Q never changes")
	}
	big := FixedQ{Q: 31}
	if big.BeginRound(0) != 15 {
		t.Fatal("Q must clamp to 4 bits")
	}
}

func TestQAdaptiveConverges(t *testing.T) {
	qa := NewQAdaptive(4)
	q := qa.BeginRound(0)
	if q != 4 {
		t.Fatalf("initial Q = %d", q)
	}
	// A run of collisions must raise Q.
	for i := 0; i < 20; i++ {
		q, _ = qa.OnSlot(Collision, 0)
	}
	if q <= 4 {
		t.Fatalf("Q after 20 collisions = %d, want > 4", q)
	}
	// A long run of empties must drive Q to 0.
	for i := 0; i < 200; i++ {
		q, _ = qa.OnSlot(Empty, 0)
	}
	if q != 0 {
		t.Fatalf("Q after many empties = %d, want 0", q)
	}
	// And it never leaves [0, 15].
	for i := 0; i < 300; i++ {
		q, _ = qa.OnSlot(Collision, 0)
		if q > 15 {
			t.Fatalf("Q escaped range: %d", q)
		}
	}
	if q != 15 {
		t.Fatalf("Q after many collisions = %d, want 15", q)
	}
}

func TestQAdaptiveSingletonKeepsQ(t *testing.T) {
	qa := NewQAdaptive(6)
	qa.BeginRound(0)
	q, changed := qa.OnSlot(Singleton, 0)
	if q != 6 || changed {
		t.Fatal("singleton slots must not move Q")
	}
}

func TestQAdaptiveChangeSignalling(t *testing.T) {
	qa := NewQAdaptive(4)
	qa.BeginRound(0)
	// C=0.3: one empty moves Qfp to 3.7 → rounds to 4 (no change); the
	// second to 3.4 → rounds to 3 (change).
	if _, changed := qa.OnSlot(Empty, 0); changed {
		t.Fatal("first empty should not change rounded Q")
	}
	if q, changed := qa.OnSlot(Empty, 0); !changed || q != 3 {
		t.Fatalf("second empty should change Q to 3, got %d", q)
	}
}

func TestQAdaptiveRoundResetsQfp(t *testing.T) {
	qa := NewQAdaptive(4)
	qa.BeginRound(0)
	for i := 0; i < 30; i++ {
		qa.OnSlot(Collision, 0)
	}
	if q := qa.BeginRound(0); q != 4 {
		t.Fatalf("BeginRound must reset to the initial Q, got %d", q)
	}
}

func TestQAdaptiveDefaultC(t *testing.T) {
	qa := &QAdaptive{InitialQ: 4} // C unset
	qa.BeginRound(0)
	if qa.C != 0.3 {
		t.Fatalf("default C = %v, want 0.3", qa.C)
	}
}

func TestOracleDFSA(t *testing.T) {
	d := &OracleDFSA{}
	if q := d.BeginRound(32); q != 5 {
		t.Fatalf("Q for 32 tags = %d, want 5", q)
	}
	if q := d.BeginRound(1); q != 0 {
		t.Fatalf("Q for 1 tag = %d, want 0", q)
	}
	if q := d.BeginRound(100000); q != 15 {
		t.Fatalf("Q must clamp at 15, got %d", q)
	}
	d.BeginRound(32)
	// Empties and collisions do not resize; successes track the remainder.
	if _, changed := d.OnSlot(Empty, 31); changed {
		t.Fatal("empty must not resize the oracle frame")
	}
	if _, changed := d.OnSlot(Collision, 31); changed {
		t.Fatal("collision must not resize the oracle frame")
	}
	q, changed := d.OnSlot(Singleton, 16)
	if q != 4 || !changed {
		t.Fatalf("after dropping to 16 tags Q = %d (changed %v), want 4", q, changed)
	}
}

func TestOutcomeString(t *testing.T) {
	if Empty.String() != "empty" || Singleton.String() != "singleton" || Collision.String() != "collision" {
		t.Fatal("outcome strings")
	}
	if Outcome(9).String() == "" {
		t.Fatal("unknown outcome must render")
	}
}
