package aloha

import "math/rand"

// Tree-splitting anti-collision (Capetanakis / Hush-Wood, the paper's
// related-work family [6, 13, 20]): on a collision, the colliding tags
// randomly split into two groups; the first group retries immediately
// while the second waits for the first subtree to drain. The paper's §2.3
// observes that Q-adaptive already operates near the achievable optimum —
// these slot-level simulations quantify how little room is left: binary
// splitting resolves n tags in ≈2.89n slots, ideal DFSA in ≈e·n ≈ 2.72n.

// SlotTally counts the slot outcomes of one inventory resolution.
type SlotTally struct {
	Slots      int
	Empties    int
	Singles    int
	Collisions int
}

// SimulateTreeSlots resolves n tags with fair binary tree splitting and
// returns the slot tally. The simulation is abstract (group sizes only):
// a stack of pending groups, depth-first.
func SimulateTreeSlots(rng *rand.Rand, n int) SlotTally {
	var t SlotTally
	if n <= 0 {
		return t
	}
	stack := []int{n}
	for len(stack) > 0 {
		g := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		t.Slots++
		switch {
		case g == 0:
			t.Empties++
		case g == 1:
			t.Singles++
		default:
			t.Collisions++
			left := 0
			for i := 0; i < g; i++ {
				if rng.Intn(2) == 0 {
					left++
				}
			}
			// Right group waits for the left subtree: push right first.
			stack = append(stack, g-left, left)
		}
	}
	return t
}

// SimulateDFSASlots resolves n tags with idealised dynamic FSA: every
// frame is sized to the number of remaining tags, and identified tags
// leave. This is the optimum COTS Q-adaptive approximates.
func SimulateDFSASlots(rng *rand.Rand, n int) SlotTally {
	var t SlotTally
	remaining := n
	for remaining > 0 {
		f := remaining
		slots := make([]int, f)
		for i := 0; i < remaining; i++ {
			slots[rng.Intn(f)]++
		}
		for _, k := range slots {
			t.Slots++
			switch k {
			case 0:
				t.Empties++
			case 1:
				t.Singles++
				remaining--
			default:
				t.Collisions++
			}
		}
	}
	return t
}

// SimulateFSASlots resolves n tags with a fixed frame size f; collided and
// unserved tags retry in the next frame. The fixed-FSA baseline of §2.1.
func SimulateFSASlots(rng *rand.Rand, n, f int) SlotTally {
	var t SlotTally
	if f < 1 {
		f = 1
	}
	remaining := n
	for remaining > 0 {
		slots := make([]int, f)
		for i := 0; i < remaining; i++ {
			slots[rng.Intn(f)]++
		}
		for _, k := range slots {
			t.Slots++
			switch k {
			case 0:
				t.Empties++
			case 1:
				t.Singles++
				remaining--
			default:
				t.Collisions++
			}
		}
	}
	return t
}
