package aloha_test

import (
	"fmt"

	"tagwatch/internal/aloha"
)

// Example evaluates the paper's inventory-cost model (Definition 1): the
// time to read n co-located tags once, and the reading rate each gets.
func Example() {
	m := aloha.PaperCostModel() // τ₀ = 19 ms, τ̄ = 0.18 ms (measured on the R420)
	for _, n := range []int{1, 5, 40} {
		fmt.Printf("n=%2d  C(n)=%6s  IRR=%4.1f Hz\n",
			n, m.Cost(n).Round(1000000), m.IRR(n))
	}
	// Output:
	// n= 1  C(n)=  19ms  IRR=52.1 Hz
	// n= 5  C(n)=  23ms  IRR=43.6 Hz
	// n=40  C(n)=  91ms  IRR=11.0 Hz
}
