// Package aloha contains the link-layer anti-collision machinery of a Gen2
// reader: the frame-sizing strategies (fixed FSA, oracle DFSA, and the
// Q-adaptive algorithm COTS readers implement) plus the paper's analytical
// reading-rate model (§2.2) built on the coupon-collector argument.
package aloha

import (
	"fmt"
	"math"
	"time"
)

// Harmonic returns the n-th harmonic number H_n = Σ_{i=1..n} 1/i.
func Harmonic(n int) float64 {
	var h float64
	for i := 1; i <= n; i++ {
		h += 1 / float64(i)
	}
	return h
}

// ExpectedSlots returns E[F], the expected number of slots an optimal DFSA
// reader needs to collect all n tags once: n·e·H_n (Eqn. 3).
func ExpectedSlots(n int) float64 {
	if n <= 0 {
		return 0
	}
	if n == 1 {
		return 1
	}
	return float64(n) * math.E * Harmonic(n)
}

// SingletonProbability returns the probability that a slot holds exactly
// one reply when n tags contend in a frame of f slots (Eqn. 1).
func SingletonProbability(n int, f float64) float64 {
	if n <= 0 || f < 1 {
		return 0
	}
	return float64(n) / f * math.Pow(1-1/f, float64(n-1))
}

// CostModel is the paper's inventory-cost model (Definition 1):
//
//	C(n) = τ₀ + n·e·τ̄·ln(n)   for n > 1
//	C(1) = τ₀ + τ̄
//
// τ₀ is the per-round start-up cost (Select, synchronisation, state
// clearing); τ̄ the mean slot duration.
type CostModel struct {
	Tau0   time.Duration // start-up cost per inventory round
	TauBar time.Duration // mean slot duration
}

// PaperCostModel returns the constants the paper measured on the ImpinJ
// R420: τ₀ = 19 ms, τ̄ = 0.18 ms.
func PaperCostModel() CostModel {
	return CostModel{Tau0: 19 * time.Millisecond, TauBar: 180 * time.Microsecond}
}

// Cost returns C(n), the expected time to inventory n tags once.
func (m CostModel) Cost(n int) time.Duration {
	switch {
	case n <= 0:
		return m.Tau0
	case n == 1:
		return m.Tau0 + m.TauBar
	default:
		slots := float64(n) * math.E * math.Log(float64(n))
		return m.Tau0 + time.Duration(slots*float64(m.TauBar))
	}
}

// IRR returns Λ(n) = 1 / C(n), the individual reading rate in Hz that each
// of n co-located tags attains under continuous inventory (Eqn. 6).
func (m CostModel) IRR(n int) float64 {
	c := m.Cost(n)
	if c <= 0 {
		return math.Inf(1)
	}
	return float64(time.Second) / float64(c)
}

// String renders the model constants.
func (m CostModel) String() string {
	return fmt.Sprintf("aloha.CostModel{τ₀=%v, τ̄=%v}", m.Tau0, m.TauBar)
}

// CostBasis returns the regressor value n·e·ln(n) (or 1 for n = 1) used
// when fitting the model by least squares against measured inventory
// times: C(n) = τ₀·1 + τ̄·CostBasis(n).
func CostBasis(n int) float64 {
	if n <= 1 {
		return 1
	}
	return float64(n) * math.E * math.Log(float64(n))
}
