package aloha

import (
	"fmt"
	"math"
)

// Outcome classifies one inventory slot.
type Outcome uint8

// Slot outcomes.
const (
	Empty Outcome = iota
	Singleton
	Collision
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case Empty:
		return "empty"
	case Singleton:
		return "singleton"
	case Collision:
		return "collision"
	default:
		return fmt.Sprintf("Outcome(%d)", uint8(o))
	}
}

// Strategy decides the frame-size parameter Q across an inventory round.
// The reader engine calls BeginRound once per round and OnSlot after every
// slot; when OnSlot reports a change the engine issues a QueryAdjust (or a
// fresh Query) with the new Q.
type Strategy interface {
	// BeginRound returns the Q for the round's opening Query. estimate is
	// the reader's belief about the contending population (0 = unknown).
	BeginRound(estimate int) uint8
	// OnSlot observes a slot outcome; remaining is the engine's count of
	// not-yet-inventoried tags where known (oracle strategies use it, real
	// ones must ignore it). It returns the Q to use next and whether it
	// changed.
	OnSlot(o Outcome, remaining int) (q uint8, changed bool)
}

// clampQ bounds Q to the Gen2 field range [0, 15].
func clampQ(q float64) float64 {
	if q < 0 {
		return 0
	}
	if q > 15 {
		return 15
	}
	return q
}

// FixedQ is plain framed-slotted ALOHA with a constant frame size — the
// baseline "FSA" of §2.1.
type FixedQ struct{ Q uint8 }

// BeginRound implements Strategy.
func (f FixedQ) BeginRound(int) uint8 { return f.Q & 0x0F }

// OnSlot implements Strategy.
func (f FixedQ) OnSlot(Outcome, int) (uint8, bool) { return f.Q & 0x0F, false }

// QAdaptive is the Gen2 Annex-D slot-count algorithm implemented by COTS
// readers: a floating-point Qfp is nudged up by C on collisions and down by
// C on empties; the integer Q is round(Qfp). The paper's §2.3 finds this
// algorithm already operates near the DFSA optimum.
type QAdaptive struct {
	InitialQ float64 // starting Qfp for each round (the "initial Q" of Fig. 2)
	C        float64 // step size, 0.1 ≤ C ≤ 0.5 (default 0.3)

	qfp  float64
	last uint8
}

// NewQAdaptive builds a Q-adaptive strategy with the given initial Q and
// the default step C = 0.3.
func NewQAdaptive(initialQ uint8) *QAdaptive {
	return &QAdaptive{InitialQ: float64(initialQ & 0x0F), C: 0.3}
}

// BeginRound implements Strategy.
func (qa *QAdaptive) BeginRound(int) uint8 {
	if qa.C == 0 {
		qa.C = 0.3
	}
	qa.qfp = clampQ(qa.InitialQ)
	qa.last = uint8(math.Round(qa.qfp))
	return qa.last
}

// OnSlot implements Strategy.
func (qa *QAdaptive) OnSlot(o Outcome, _ int) (uint8, bool) {
	switch o {
	case Empty:
		qa.qfp = clampQ(qa.qfp - qa.C)
	case Collision:
		qa.qfp = clampQ(qa.qfp + qa.C)
	}
	q := uint8(math.Round(qa.qfp))
	changed := q != qa.last
	qa.last = q
	return q, changed
}

// OracleDFSA sizes every frame to the exact number of remaining tags — the
// idealised dynamic FSA of §2.1 ("f = n, and each time a tag is identified
// the frame restarts with f = f − 1"). It is the upper bound the paper's
// analytical model describes; real readers approximate it with QAdaptive.
type OracleDFSA struct {
	last uint8
}

// qForPopulation returns round(log2 n) clamped to [0, 15]; a frame of 2^Q
// slots approximates f = n as closely as Gen2's power-of-two frames allow.
func qForPopulation(n int) uint8 {
	if n <= 1 {
		return 0
	}
	return uint8(clampQ(math.Round(math.Log2(float64(n)))))
}

// BeginRound implements Strategy.
func (d *OracleDFSA) BeginRound(estimate int) uint8 {
	d.last = qForPopulation(estimate)
	return d.last
}

// OnSlot implements Strategy.
func (d *OracleDFSA) OnSlot(o Outcome, remaining int) (uint8, bool) {
	if o != Singleton {
		return d.last, false
	}
	q := qForPopulation(remaining)
	changed := q != d.last
	d.last = q
	return q, changed
}
