package reader

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"tagwatch/internal/aloha"
	"tagwatch/internal/epc"
	"tagwatch/internal/gen2"
	"tagwatch/internal/rf"
	"tagwatch/internal/scene"
	"tagwatch/internal/stats"
)

// newRig builds a scene with one antenna at the origin's mast and n
// stationary tags on a 2 m grid nearby, plus a reader.
func newRig(t *testing.T, seed int64, n int) (*Reader, []epc.EPC) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	p := rf.DefaultParams()
	p.PhaseNoiseStd = 0.05
	scn := scene.New(rf.NewChannel(p, rng), rng)
	scn.AddAntenna(rf.Pt(0, 0, 2))
	codes, err := epc.RandomPopulation(rng, n, 96)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range codes {
		x := 0.5 + float64(i%8)*0.3
		y := 0.5 + float64(i/8)*0.3
		scn.AddTag(c, scene.Stationary{P: rf.Pt(x, y, 0)})
	}
	return New(DefaultConfig(), scn), codes
}

func TestSingleTagRound(t *testing.T) {
	r, codes := newRig(t, 1, 1)
	reads, d := r.RunRound(RoundOpts{Antenna: 1})
	if len(reads) != 1 {
		t.Fatalf("reads = %d, want 1", len(reads))
	}
	if reads[0].EPC != codes[0] {
		t.Fatalf("read EPC %s, want %s", reads[0].EPC, codes[0])
	}
	if reads[0].Antenna != 1 {
		t.Fatalf("antenna = %d", reads[0].Antenna)
	}
	if d < r.Config().StartupCost {
		t.Fatalf("round duration %v below start-up cost", d)
	}
	// One tag should cost little beyond τ₀: < 40 ms total.
	if d > 40*time.Millisecond {
		t.Fatalf("single-tag round took %v", d)
	}
}

func TestRoundReadsEveryTagExactlyOnce(t *testing.T) {
	for _, n := range []int{5, 20, 40} {
		r, codes := newRig(t, int64(n), n)
		reads, _ := r.RunRound(RoundOpts{Antenna: 1})
		got := map[epc.EPC]int{}
		for _, rd := range reads {
			got[rd.EPC]++
		}
		for _, c := range codes {
			if got[c] != 1 {
				t.Fatalf("n=%d: tag %s read %d times, want 1", n, c, got[c])
			}
		}
	}
}

func TestConsecutiveRoundsKeepReading(t *testing.T) {
	r, codes := newRig(t, 3, 10)
	for round := 0; round < 5; round++ {
		reads, _ := r.RunRound(RoundOpts{Antenna: 1})
		if len(reads) != len(codes) {
			t.Fatalf("round %d read %d tags, want %d", round, len(reads), len(codes))
		}
	}
}

func TestContentionSlotsWithinModelBounds(t *testing.T) {
	// Channel contention is real but bounded: collecting n tags needs at
	// least e slots per tag (re-randomised slotted-ALOHA lower bound; the
	// engine's spec-faithful QueryAdjust redraws operate in this regime)
	// and at most the paper's coupon-collector upper model e·ln n (§2.2,
	// Eqn. 4 — an approximation that assumes the frame never shrinks).
	slotsPerTag := func(n int) float64 {
		r, _ := newRig(t, int64(400+n), n)
		const rounds = 5
		for i := 0; i < rounds; i++ {
			r.RunRound(RoundOpts{Antenna: 1})
		}
		return float64(r.Stats().Slots) / float64(rounds*n)
	}
	for _, n := range []int{10, 40} {
		s := slotsPerTag(n)
		lo, hi := math.E*0.8, math.E*math.Log(float64(n))*1.2
		if s < lo || s > hi {
			t.Fatalf("slots/tag at n=%d = %.2f, want within [%.2f, %.2f]", n, s, lo, hi)
		}
	}
}

func TestIRRCollapsesWithPopulation(t *testing.T) {
	// The §2.3 finding: IRR(40)/IRR(1) drops by a large factor. Measure
	// actual rounds.
	irr := func(n int) float64 {
		r, _ := newRig(t, int64(100+n), n)
		var total time.Duration
		const rounds = 10
		for i := 0; i < rounds; i++ {
			_, d := r.RunRound(RoundOpts{Antenna: 1})
			total += d
		}
		return float64(rounds) * float64(time.Second) / float64(total)
	}
	irr1, irr40 := irr(1), irr(40)
	if irr1 < 30 || irr1 > 70 {
		t.Fatalf("IRR(1) = %.1f Hz, want tens of Hz", irr1)
	}
	drop := 1 - irr40/irr1
	if drop < 0.5 {
		t.Fatalf("IRR drop at n=40 = %.2f, want a large collapse (paper: 0.84)", drop)
	}
}

func TestMeasuredCostMatchesModelShape(t *testing.T) {
	// Fit τ₀, τ̄ from measured round durations via the paper's least
	// squares and verify the fit explains the data (Fig. 2 methodology).
	var basis, ones, y []float64
	for _, n := range []int{1, 2, 4, 8, 12, 16, 24, 32, 40} {
		r, _ := newRig(t, int64(200+n), n)
		var total time.Duration
		const rounds = 5
		for i := 0; i < rounds; i++ {
			_, d := r.RunRound(RoundOpts{Antenna: 1})
			total += d
		}
		mean := float64(total) / rounds / float64(time.Millisecond)
		ones = append(ones, 1)
		basis = append(basis, aloha.CostBasis(n))
		y = append(y, mean)
	}
	tau0, tauBar, err := stats.LeastSquares2(ones, basis, y)
	if err != nil {
		t.Fatal(err)
	}
	// τ₀ should recover the configured 19 ms within tolerance; τ̄ should be
	// in the fraction-of-a-millisecond regime like the paper's 0.18 ms.
	if tau0 < 10 || tau0 > 30 {
		t.Fatalf("fitted τ₀ = %.2f ms, want ≈19", tau0)
	}
	if tauBar < 0.05 || tauBar > 0.6 {
		t.Fatalf("fitted τ̄ = %.3f ms, want ≈0.1–0.5", tauBar)
	}
	pred := make([]float64, len(y))
	for i := range pred {
		pred[i] = tau0 + tauBar*basis[i]
	}
	if rmse := stats.RMSE(pred, y); rmse > 8 {
		t.Fatalf("model RMSE = %.2f ms — model does not track measurements", rmse)
	}
}

func TestFilterRestrictsRound(t *testing.T) {
	r, codes := newRig(t, 6, 20)
	target := codes[7]
	mask := gen2.SelectCmd{
		MemBank: epc.BankEPC,
		Pointer: epc.EPCWordOffset,
		Mask:    target,
	}
	reads, d := r.RunRound(RoundOpts{Antenna: 1, Filter: &mask})
	if len(reads) != 1 || reads[0].EPC != target {
		t.Fatalf("filtered round read %v, want only %s", reads, target)
	}
	// Selective round over 1 tag must be far cheaper than reading all 20.
	rAll, _ := newRig(t, 7, 20)
	_, dAll := rAll.RunRound(RoundOpts{Antenna: 1})
	if d >= dAll {
		t.Fatalf("selective round (%v) should undercut read-all (%v)", d, dAll)
	}
}

func TestFilterPrefixCoversSubset(t *testing.T) {
	// Build tags with controlled prefixes: 8 share a 4-bit prefix 0x3,
	// 12 start 0xE.
	rng := rand.New(rand.NewSource(8))
	p := rf.DefaultParams()
	scn := scene.New(rf.NewChannel(p, rng), rng)
	scn.AddAntenna(rf.Pt(0, 0, 2))
	var want int
	for i := 0; i < 20; i++ {
		b := make([]byte, 12)
		rng.Read(b)
		if i < 8 {
			b[0] = 0x30 | b[0]&0x0F
			want++
		} else {
			b[0] = 0xE0 | b[0]&0x0F
		}
		scn.AddTag(epc.New(b), scene.Stationary{P: rf.Pt(0.5+float64(i)*0.1, 1, 0)})
	}
	r := New(DefaultConfig(), scn)
	mask, _ := epc.NewBits([]byte{0x30}, 4)
	filter := gen2.SelectCmd{MemBank: epc.BankEPC, Pointer: epc.EPCWordOffset, Mask: mask}
	reads, _ := r.RunRound(RoundOpts{Antenna: 1, Filter: &filter})
	if len(reads) != want {
		t.Fatalf("prefix round read %d tags, want %d", len(reads), want)
	}
	for _, rd := range reads {
		if rd.EPC.Bytes()[0]>>4 != 0x3 {
			t.Fatalf("non-matching tag %s read", rd.EPC)
		}
	}
}

func TestBudgetAbortsRound(t *testing.T) {
	r, _ := newRig(t, 9, 40)
	budget := r.Config().StartupCost + 2*time.Millisecond
	reads, d := r.RunRound(RoundOpts{Antenna: 1, Budget: budget})
	if len(reads) >= 40 {
		t.Fatal("budgeted round should not complete the population")
	}
	// Allow one slot of overshoot.
	if d > budget+2*time.Millisecond {
		t.Fatalf("round overshot budget: %v > %v", d, budget)
	}
}

func TestOutOfRangeTagsInvisible(t *testing.T) {
	r, _ := newRig(t, 10, 5)
	// A tag 500 m away is below sensitivity.
	farCode := epc.MustParse("deadbeefdeadbeefdeadbeef")
	r.Scene().AddTag(farCode, scene.Stationary{P: rf.Pt(500, 0, 0)})
	reads, _ := r.RunRound(RoundOpts{Antenna: 1})
	for _, rd := range reads {
		if rd.EPC == farCode {
			t.Fatal("out-of-range tag was read")
		}
	}
	if len(reads) != 5 {
		t.Fatalf("reads = %d, want 5", len(reads))
	}
}

func TestUnknownAntenna(t *testing.T) {
	r, _ := newRig(t, 11, 3)
	reads, d := r.RunRound(RoundOpts{Antenna: 99})
	if len(reads) != 0 {
		t.Fatal("unknown antenna must read nothing")
	}
	if d < r.Config().StartupCost {
		t.Fatal("the round still pays τ₀")
	}
}

func TestStatsAccumulate(t *testing.T) {
	r, _ := newRig(t, 12, 10)
	r.RunRound(RoundOpts{Antenna: 1})
	s := r.Stats()
	if s.Rounds != 1 || s.Reads != 10 || s.Singles != 10 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Slots < s.Empties+s.Collisions+s.Singles {
		t.Fatalf("slot accounting inconsistent: %+v", s)
	}
	if s.Empties == 0 {
		t.Fatal("a DFSA round over 10 tags must see empty slots")
	}
}

func TestFrequencyHopping(t *testing.T) {
	r, _ := newRig(t, 13, 2)
	seen := map[int]bool{}
	for i := 0; i < 40; i++ {
		reads, _ := r.RunRound(RoundOpts{Antenna: 1})
		for _, rd := range reads {
			seen[rd.Channel] = true
		}
		r.Advance(500 * time.Millisecond)
	}
	if len(seen) < 4 {
		t.Fatalf("hopping visited only %d channels over 40 rounds", len(seen))
	}
	// Hop disabled pins channel 0.
	cfg := DefaultConfig()
	cfg.HopEvery = 0
	r2 := New(cfg, r.Scene())
	reads, _ := r2.RunRound(RoundOpts{Antenna: 1})
	for _, rd := range reads {
		if rd.Channel != 0 {
			t.Fatalf("hop-disabled read on channel %d", rd.Channel)
		}
	}
}

func TestInventoryAllMultiAntenna(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	p := rf.DefaultParams()
	scn := scene.New(rf.NewChannel(p, rng), rng)
	// Two antennas 60 m apart, each with its own tag cluster: the paper's
	// "each antenna covers 40 tags" layout, scaled down.
	scn.AddAntenna(rf.Pt(0, 0, 2))
	scn.AddAntenna(rf.Pt(60, 0, 2))
	codes, _ := epc.RandomPopulation(rng, 10, 96)
	for i, c := range codes {
		base := rf.Pt(0.5, 0.5, 0)
		if i >= 5 {
			base = rf.Pt(60.5, 0.5, 0)
		}
		scn.AddTag(c, scene.Stationary{P: base.Add(rf.Pt(float64(i%5)*0.3, 0, 0))})
	}
	r := New(DefaultConfig(), scn)
	reads := r.InventoryAll()
	byAnt := map[int]int{}
	for _, rd := range reads {
		byAnt[rd.Antenna]++
	}
	if byAnt[1] != 5 || byAnt[2] != 5 {
		t.Fatalf("per-antenna reads = %v, want 5 each", byAnt)
	}
}

func TestAdvanceAndString(t *testing.T) {
	r, _ := newRig(t, 15, 1)
	r.Advance(time.Second)
	if r.Now() != time.Second {
		t.Fatal("Advance must move the clock")
	}
	r.Advance(-time.Second)
	if r.Now() != time.Second {
		t.Fatal("negative Advance must be ignored")
	}
	if r.String() == "" {
		t.Fatal("String must render")
	}
}

func TestDefaultsFilledIn(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	scn := scene.New(rf.NewChannel(rf.DefaultParams(), rng), rng)
	scn.AddAntenna(rf.Pt(0, 0, 2))
	r := New(Config{}, scn) // zero config
	if r.Config().Strategy == nil || r.Config().MaxSlotsPerRound <= 0 || r.Config().Timing.TariUS == 0 {
		t.Fatalf("zero config must be defaulted: %+v", r.Config())
	}
}

func TestOracleStrategyFasterThanFixedQ(t *testing.T) {
	run := func(strategy aloha.Strategy, seed int64) time.Duration {
		rng := rand.New(rand.NewSource(seed))
		scn := scene.New(rf.NewChannel(rf.DefaultParams(), rng), rng)
		scn.AddAntenna(rf.Pt(0, 0, 2))
		codes, _ := epc.RandomPopulation(rng, 30, 96)
		for i, c := range codes {
			scn.AddTag(c, scene.Stationary{P: rf.Pt(0.5+float64(i%6)*0.3, 0.5+float64(i/6)*0.3, 0)})
		}
		cfg := DefaultConfig()
		cfg.Strategy = strategy
		r := New(cfg, scn)
		var total time.Duration
		for i := 0; i < 5; i++ {
			_, d := r.RunRound(RoundOpts{Antenna: 1})
			total += d
		}
		return total
	}
	oracle := run(&aloha.OracleDFSA{}, 42)
	bad := run(aloha.FixedQ{Q: 10}, 42) // frame 1024 for 30 tags: empty-heavy
	if oracle >= bad {
		t.Fatalf("oracle DFSA (%v) must beat a wildly oversized fixed frame (%v)", oracle, bad)
	}
}

func TestRoundWithAccessOps(t *testing.T) {
	r, codes := newRig(t, 30, 4)
	ops := []AccessOp{
		{OpSpecID: 1, Kind: AccessRead, Bank: epc.BankTID, WordPtr: 0, WordCount: 2},
		{OpSpecID: 2, Kind: AccessWrite, Bank: epc.BankUser, WordPtr: 0, Data: []uint16{0xCAFE}},
		{OpSpecID: 3, Kind: AccessRead, Bank: epc.BankEPC, WordPtr: 99, WordCount: 1}, // overrun
	}
	reads, d := r.RunRound(RoundOpts{Antenna: 1, Access: ops})
	if len(reads) != len(codes) {
		t.Fatalf("reads = %d", len(reads))
	}
	for _, rd := range reads {
		if len(rd.Access) != 3 {
			t.Fatalf("access results = %d", len(rd.Access))
		}
		tid := rd.Access[0]
		if !tid.OK || len(tid.Data) != 2 || tid.Data[0]>>8 != 0xE2 {
			t.Fatalf("TID read: %+v", tid)
		}
		if !rd.Access[1].OK || rd.Access[1].WordsWritten != 1 {
			t.Fatalf("write: %+v", rd.Access[1])
		}
		if rd.Access[2].OK {
			t.Fatal("overrun read must fail")
		}
	}
	// The writes landed in tag memory.
	for _, rd := range reads {
		st := r.Scene().FindTag(rd.EPC)
		words, err := st.Memory.ReadWords(epc.BankUser, 0, 1)
		if err != nil || words[0] != 0xCAFE {
			t.Fatalf("user bank after write: %04x %v", words, err)
		}
	}
	// Access ops cost air time: the round must be slower than a plain one.
	r2, _ := newRig(t, 30, 4)
	_, plain := r2.RunRound(RoundOpts{Antenna: 1})
	if d <= plain {
		t.Fatalf("access round (%v) must cost more than plain (%v)", d, plain)
	}
	// And the inventory invariant still holds on the next round.
	reads2, _ := r.RunRound(RoundOpts{Antenna: 1})
	if len(reads2) != len(codes) {
		t.Fatalf("post-access round reads = %d", len(reads2))
	}
}

func TestCaptureEffectResolvesNearFar(t *testing.T) {
	// One tag right under the antenna, one at the edge of range: with
	// capture enabled, collided slots resolve to the strong tag, so rounds
	// finish in fewer slots than without capture.
	build := func(margin float64) *Reader {
		rng := rand.New(rand.NewSource(77))
		scn := scene.New(rf.NewChannel(rf.DefaultParams(), rng), rng)
		scn.AddAntenna(rf.Pt(0, 0, 2))
		scn.AddTag(epc.MustParse("300000000000000000000001"), scene.Stationary{P: rf.Pt(0.3, 0, 1.8)}) // strong
		scn.AddTag(epc.MustParse("300000000000000000000002"), scene.Stationary{P: rf.Pt(9, 0, 0)})     // weak
		cfg := DefaultConfig()
		cfg.CaptureMarginDB = 6
		if margin == 0 {
			cfg.CaptureMarginDB = 0
		}
		return New(cfg, scn)
	}
	withCapture := build(6)
	var capSlots int
	for i := 0; i < 20; i++ {
		reads, _ := withCapture.RunRound(RoundOpts{Antenna: 1})
		if len(reads) != 2 {
			t.Fatalf("capture round read %d tags; both must still be inventoried", len(reads))
		}
	}
	capSlots = withCapture.Stats().Slots

	without := build(0)
	for i := 0; i < 20; i++ {
		reads, _ := without.RunRound(RoundOpts{Antenna: 1})
		if len(reads) != 2 {
			t.Fatalf("plain round read %d tags", len(reads))
		}
	}
	plainSlots := without.Stats().Slots
	if capSlots >= plainSlots {
		t.Fatalf("capture (%d slots) must beat destructive collisions (%d)", capSlots, plainSlots)
	}
	// The link-budget gap really is ≥ 6 dB in this geometry.
	if withCapture.Stats().Collisions >= without.Stats().Collisions {
		t.Fatalf("capture must convert collisions: %d vs %d",
			withCapture.Stats().Collisions, without.Stats().Collisions)
	}
}
