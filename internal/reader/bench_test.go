package reader

import (
	"math/rand"
	"testing"

	"tagwatch/internal/epc"
	"tagwatch/internal/rf"
	"tagwatch/internal/scene"
)

func benchReader(b *testing.B, n int) *Reader {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	scn := scene.New(rf.NewChannel(rf.DefaultParams(), rng), rng)
	scn.AddAntenna(rf.Pt(0, 0, 2))
	codes, err := epc.RandomPopulation(rng, n, 96)
	if err != nil {
		b.Fatal(err)
	}
	for i, c := range codes {
		// 20 columns keeps even a 400-tag grid well inside read range.
		scn.AddTag(c, scene.Stationary{P: rf.Pt(0.4+float64(i%20)*0.25, 0.4+float64(i/20)*0.25, 0)})
	}
	return New(DefaultConfig(), scn)
}

func BenchmarkRound40Tags(b *testing.B) {
	r := benchReader(b, 40)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reads, _ := r.RunRound(RoundOpts{Antenna: 1})
		if len(reads) != 40 {
			b.Fatalf("reads = %d", len(reads))
		}
	}
}

func BenchmarkRound400Tags(b *testing.B) {
	r := benchReader(b, 400)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reads, _ := r.RunRound(RoundOpts{Antenna: 1})
		if len(reads) != 400 {
			b.Fatalf("reads = %d", len(reads))
		}
	}
}
