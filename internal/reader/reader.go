// Package reader implements a COTS-style Gen2 reader engine (modelled on
// the ImpinJ Speedway R420 the paper uses) on top of the gen2 state
// machines and the rf channel: inventory rounds with Q-adaptive frame
// sizing, per-round start-up cost, Select-based selective reading,
// frequency hopping, and multi-antenna time multiplexing — all in virtual
// time, so hour-long traces simulate in milliseconds.
//
// The engine is the "device" the Tagwatch middleware drives. Everything
// the middleware can observe — EPC, timestamp, antenna, channel, RF phase,
// RSS — is surfaced through TagRead, exactly the tuple a real LLRP
// RO_ACCESS_REPORT carries.
package reader

import (
	"fmt"
	"time"

	"tagwatch/internal/aloha"
	"tagwatch/internal/epc"
	"tagwatch/internal/gen2"
	"tagwatch/internal/scene"
)

// TagRead is one successful singulation: the reading the reader reports
// upstream.
type TagRead struct {
	EPC      epc.EPC
	Time     time.Duration // virtual time of the EPC backscatter
	Antenna  int           // 1-based antenna port
	Channel  int           // hop channel index
	PhaseRad float64
	RSSdBm   float64
	// Access holds the results of the round's access operations against
	// this tag (empty when the round carries none).
	Access []AccessResult
}

// Stats aggregates link-layer counters across the reader's lifetime.
type Stats struct {
	Rounds     int
	Slots      int
	Empties    int
	Collisions int
	Singles    int
	Reads      int
}

// Config tunes the reader engine.
type Config struct {
	// Timing is the Gen2 link profile.
	Timing gen2.LinkTiming
	// Session is the inventory session used for all rounds.
	Session gen2.Session
	// StartupCost is τ₀: the fixed per-round overhead a COTS reader spends
	// on ROSpec processing, synchronisation and state clearing before the
	// first slot (§2.2). The paper measures 19 ms on the R420.
	StartupCost time.Duration
	// HopEvery is the frequency-hop dwell; the Chinese band plan the paper
	// operates under hops every 2 s. Zero disables hopping.
	HopEvery time.Duration
	// NewStrategy builds the frame-sizing strategy. Each reader owns one
	// strategy instance for its lifetime (Gen2 readers carry Q across
	// rounds only via the initial Q; our strategies reset in BeginRound).
	Strategy aloha.Strategy
	// MaxSlotsPerRound bounds runaway rounds (a safety net; optimal rounds
	// need ≈ n·e·ln n slots).
	MaxSlotsPerRound int
	// CaptureMarginDB enables the capture effect: when the strongest
	// replier in a collided slot exceeds every other replier by at least
	// this margin, the receiver decodes it anyway (near–far capture).
	// Zero disables capture (the default; the paper's model assumes
	// destructive collisions).
	CaptureMarginDB float64
}

// DefaultConfig returns a configuration matching the paper's testbed:
// autoset link profile, S1, τ₀ = 19 ms, 2 s hop dwell, Q-adaptive with
// initial Q = 4.
func DefaultConfig() Config {
	return Config{
		Timing:           gen2.ImpinjAutosetProfile(),
		Session:          gen2.S1,
		StartupCost:      19 * time.Millisecond,
		HopEvery:         2 * time.Second,
		Strategy:         aloha.NewQAdaptive(4),
		MaxSlotsPerRound: 1 << 17,
	}
}

// Reader simulates one multi-antenna Gen2 reader attached to a scene.
type Reader struct {
	cfg   Config
	scn   *scene.Scene
	tags  map[epc.EPC]*gen2.Tag // link-layer state per scene tag
	now   time.Duration
	chIdx int
	stats Stats
	// repliers is the reusable per-slot reply buffer: the inventory loop
	// runs millions of slots per experiment and must not allocate per
	// slot.
	repliers []replier
}

// replier pairs a tag with its in-flight RN16 reply for one slot.
type replier struct {
	tag *gen2.Tag
	rep *gen2.Reply
}

// New builds a reader over a scene. The scene must already contain its
// antennas; tags may be added to the scene later and are picked up
// automatically.
func New(cfg Config, scn *scene.Scene) *Reader {
	if cfg.Strategy == nil {
		cfg.Strategy = aloha.NewQAdaptive(4)
	}
	if cfg.MaxSlotsPerRound <= 0 {
		cfg.MaxSlotsPerRound = 1 << 17
	}
	if cfg.Timing.TariUS == 0 {
		cfg.Timing = gen2.ImpinjAutosetProfile()
	}
	return &Reader{cfg: cfg, scn: scn, tags: make(map[epc.EPC]*gen2.Tag)}
}

// Now returns the reader's virtual clock.
func (r *Reader) Now() time.Duration { return r.now }

// Advance moves the virtual clock forward without reading — idle time
// between phases.
func (r *Reader) Advance(d time.Duration) {
	if d > 0 {
		r.now += d
	}
}

// Stats returns the accumulated link-layer counters.
func (r *Reader) Stats() Stats { return r.stats }

// Config returns the reader's configuration.
func (r *Reader) Config() Config { return r.cfg }

// Scene returns the scene the reader observes.
func (r *Reader) Scene() *scene.Scene { return r.scn }

// linkTag returns the gen2 state machine for a scene tag, creating it on
// first contact.
func (r *Reader) linkTag(st *scene.Tag) *gen2.Tag {
	t, ok := r.tags[st.EPC]
	if !ok {
		t = gen2.NewTag(st.Memory)
		r.tags[st.EPC] = t
	}
	return t
}

// hop advances the frequency-hop channel when the dwell expires.
func (r *Reader) hop() {
	if r.cfg.HopEvery <= 0 {
		r.chIdx = 0
		return
	}
	// Deterministic pseudo-random hop sequence: stride 7 is coprime with
	// the 16-channel plan, visiting every channel each super-period.
	slot := int(r.now / r.cfg.HopEvery)
	n := r.scn.Channel.Params().Plan.NumChan
	r.chIdx = (slot * 7) % n
}

// RoundOpts parameterises one inventory round.
type RoundOpts struct {
	// Antenna is the 1-based antenna port the round runs on.
	Antenna int
	// Filter, when non-nil, restricts the round to tags matching the
	// bitmask: the reader issues SL-based Select commands and queries with
	// Sel=SL, reproducing one AISpec with one C1G2Filter (§6).
	Filter *gen2.SelectCmd
	// Filters, when non-empty, restricts the round to tags matching ALL
	// masks (Gen2 successive-Select intersection) — multiple C1G2Filters
	// in one inventory command. Ignored when Filter is set.
	Filters []gen2.SelectCmd
	// Budget, when positive, aborts the round once the round has consumed
	// this much virtual time (the dwell boundary of a phase).
	Budget time.Duration
	// Access lists memory operations performed on every singulated tag
	// (an LLRP AccessSpec bound to the round).
	Access []AccessOp
	// AccessFilter, when non-nil, restricts Access to tags whose memory it
	// accepts (the AccessSpec's C1G2TagSpec).
	AccessFilter func(*epc.Memory) bool
}

type participant struct {
	st *scene.Tag
	lt *gen2.Tag
}

// RunRound executes one full inventory round and returns the successful
// reads plus the round's total virtual duration. The round charges the
// start-up cost τ₀, the Select air time, every slot, and the tail of empty
// slots a real reader needs before it can conclude the population is
// exhausted.
func (r *Reader) RunRound(opts RoundOpts) ([]TagRead, time.Duration) {
	start := r.now
	lt := r.cfg.Timing
	r.stats.Rounds++
	r.hop()

	// τ₀: ROSpec processing, synchronisation, state clearing, reporting.
	r.now += r.cfg.StartupCost

	ant, ok := r.antenna(opts.Antenna)
	if !ok {
		return nil, r.now - start
	}

	// Determine the tags the antenna can energise at round start.
	parts := make([]participant, 0, len(r.scn.Tags))
	for _, st := range r.scn.Tags {
		m := r.scn.MeasureTag(st, ant, r.now, r.chIdx)
		if !m.Readable {
			continue
		}
		parts = append(parts, participant{st: st, lt: r.linkTag(st)})
	}

	// Select sequence. Every round begins by resetting the session flag of
	// all tags in the field to A (part of the "clearing history states"
	// the paper folds into τ₀ — but the air time is charged explicitly).
	resetSel := gen2.SelectCmd{
		Target:  gen2.Target(r.cfg.Session),
		Action:  gen2.ActionAssertNothing, // zero-length mask matches all
		MemBank: epc.BankEPC,
		Pointer: 0,
	}
	r.applySelect(parts, resetSel)

	filters := opts.Filters
	if opts.Filter != nil {
		filters = []gen2.SelectCmd{*opts.Filter}
	}
	sel := gen2.SelAll
	if len(filters) > 0 {
		sel = gen2.SelSL
		// Deassert SL everywhere, assert it on the first mask's matches,
		// then intersect: each further Select deasserts non-matching tags
		// (the Gen2 successive-Select idiom).
		clearSL := gen2.SelectCmd{Target: gen2.TargetSL, Action: gen2.ActionDeassertNothing, MemBank: epc.BankEPC, Pointer: 0}
		r.applySelect(parts, clearSL)
		for i, f := range filters {
			f.Target = gen2.TargetSL
			if i == 0 {
				f.Action = gen2.ActionAssertNothing
			} else {
				f.Action = gen2.ActionNothingDeassert
			}
			r.applySelect(parts, f)
		}
	}

	// Opening Query.
	q := r.cfg.Strategy.BeginRound(len(parts))
	r.now += lt.QueryDuration()
	replies := r.repliers[:0]
	pending := 0 // participants whose flag still matches the round target
	query := gen2.Query{Sel: sel, Session: r.cfg.Session, Target: gen2.FlagA, Q: q}
	for _, p := range parts {
		if rep := p.lt.HandleQuery(query, r.scn.RNG()); rep != nil {
			replies = append(replies, replier{tag: p.lt, rep: rep})
		}
	}
	for _, p := range parts {
		if r.participates(p.lt, sel) {
			pending++
		}
	}

	var reads []TagRead
	slotCmd := lt.QueryRepDuration()
	overBudget := func() bool {
		return opts.Budget > 0 && r.now-start >= opts.Budget
	}

	emptyStreak := 0
	for slots := 0; slots < r.cfg.MaxSlotsPerRound; slots++ {
		if overBudget() {
			break
		}
		r.stats.Slots++
		// Capture effect: a dominant replier survives the collision.
		if len(replies) > 1 && r.cfg.CaptureMarginDB > 0 {
			// The drowned tags need no special handling: like any collided
			// tag, their next QueryRep wraps them back to Arbitrate.
			if w := r.captureWinner(replies, ant); w >= 0 {
				replies[0] = replies[w]
				replies = replies[:1]
			}
		}
		var outcome aloha.Outcome
		switch len(replies) {
		case 0:
			outcome = aloha.Empty
			r.stats.Empties++
			r.now += lt.EmptySlotDuration(slotCmd)
			emptyStreak++
		case 1:
			outcome = aloha.Singleton
			r.stats.Singles++
			emptyStreak = 0
			tag, rep := replies[0].tag, replies[0].rep
			r.now += slotCmd + lt.T1() + lt.RN16Duration() + lt.T2() + lt.ACKDuration() + lt.T1()
			er := tag.HandleACK(gen2.ACK{RN16: rep.RN16})
			if er != nil {
				r.now += lt.EPCReplyDuration(er.EPC.Bits()) + lt.T2()
				var access []AccessResult
				if len(opts.Access) > 0 &&
					(opts.AccessFilter == nil || opts.AccessFilter(tag.Mem)) {
					access = r.performAccess(tag, rep.RN16, opts.Access)
				}
				st := r.scn.FindTag(er.EPC)
				if st != nil {
					m := r.scn.MeasureTag(st, ant, r.now, r.chIdx)
					reads = append(reads, TagRead{
						EPC: er.EPC, Time: r.now, Antenna: ant.ID,
						Channel: r.chIdx, PhaseRad: m.PhaseRad, RSSdBm: m.RSSdBm,
						Access: access,
					})
					r.stats.Reads++
					pending--
				}
			}
		default:
			outcome = aloha.Collision
			r.stats.Collisions++
			emptyStreak = 0
			r.now += lt.CollisionSlotDuration(slotCmd)
		}

		newQ, changed := r.cfg.Strategy.OnSlot(outcome, pending)

		// Round termination: population exhausted and the reader has seen
		// enough empties to conclude so (Q decayed to zero plus one final
		// empty slot at Q=0).
		if pending <= 0 && outcome == aloha.Empty && newQ == 0 && emptyStreak > 1 {
			break
		}

		if changed || outcome == aloha.Collision {
			// QueryAdjust re-draws all arbitrating tags. After a collision
			// the reader must adjust even when the rounded Q is unchanged:
			// collided tags have wrapped their slot counters to 0x7FFF and
			// only a redraw brings them back into the frame (otherwise an
			// initial Q of 0 deadlocks, alternating collision and empty).
			r.now += lt.QueryAdjustDuration()
			qa := gen2.QueryAdjust{Session: r.cfg.Session}
			replies = replies[:0]
			for _, p := range parts {
				if rep := p.lt.HandleQueryAdjust(qa, newQ, r.scn.RNG()); rep != nil {
					replies = append(replies, replier{tag: p.lt, rep: rep})
				}
			}
			continue
		}

		// Next slot via QueryRep.
		replies = replies[:0]
		qr := gen2.QueryRep{Session: r.cfg.Session}
		for _, p := range parts {
			if rep := p.lt.HandleQueryRep(qr, r.scn.RNG()); rep != nil {
				replies = append(replies, replier{tag: p.lt, rep: rep})
			}
		}
	}
	r.repliers = replies[:0]
	return reads, r.now - start
}

// captureWinner returns the index of the strongest replier when it clears
// every other replier by the configured margin, -1 otherwise.
func (r *Reader) captureWinner(replies []replier, ant scene.Antenna) int {
	var best, second float64 = -1e9, -1e9
	winner := -1
	for i, rep := range replies {
		st := r.scn.FindTag(rep.tag.EPC())
		if st == nil {
			return -1
		}
		m := r.scn.MeasureTag(st, ant, r.now, r.chIdx)
		if m.RSSdBm > best {
			second = best
			best = m.RSSdBm
			winner = i
		} else if m.RSSdBm > second {
			second = m.RSSdBm
		}
	}
	if best-second >= r.cfg.CaptureMarginDB {
		return winner
	}
	return -1
}

// applySelect charges the Select air time and applies the command to all
// energised tags.
func (r *Reader) applySelect(parts []participant, cmd gen2.SelectCmd) {
	r.now += r.cfg.Timing.SelectDuration(cmd)
	for _, p := range parts {
		p.lt.ApplySelect(cmd)
	}
}

// participates mirrors the tag-side Query participation test for the
// reader's bookkeeping of how many tags remain un-inventoried.
func (r *Reader) participates(t *gen2.Tag, sel gen2.Sel) bool {
	switch sel {
	case gen2.SelSL:
		if !t.SL() {
			return false
		}
	case gen2.SelNotSL:
		if t.SL() {
			return false
		}
	}
	return t.Inventoried(r.cfg.Session) == gen2.FlagA
}

// antenna resolves a 1-based antenna port.
func (r *Reader) antenna(id int) (scene.Antenna, bool) {
	for _, a := range r.scn.Antennas {
		if a.ID == id {
			return a, true
		}
	}
	return scene.Antenna{}, false
}

// InventoryAll runs one round on every antenna in port order — the
// "reading all" baseline.
func (r *Reader) InventoryAll() []TagRead {
	var out []TagRead
	for _, a := range r.scn.Antennas {
		reads, _ := r.RunRound(RoundOpts{Antenna: a.ID})
		out = append(out, reads...)
	}
	return out
}

// String renders the reader state for logs.
func (r *Reader) String() string {
	return fmt.Sprintf("reader.Reader{t=%v ch=%d rounds=%d reads=%d}", r.now, r.chIdx, r.stats.Rounds, r.stats.Reads)
}
