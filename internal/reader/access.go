package reader

import (
	"tagwatch/internal/epc"
	"tagwatch/internal/gen2"
)

// AccessKind distinguishes access operations.
type AccessKind uint8

// Access operation kinds.
const (
	AccessRead AccessKind = iota
	AccessWrite
)

// AccessOp is one memory access performed on every tag singulated in the
// round (the execution model of an LLRP AccessSpec attached to an ROSpec).
type AccessOp struct {
	// OpSpecID correlates results with the requesting OpSpec.
	OpSpecID uint16
	Kind     AccessKind
	Bank     epc.MemoryBank
	WordPtr  int
	// WordCount is the read length (reads only).
	WordCount int
	// Data is the write payload (writes only).
	Data []uint16
}

// AccessResult is the outcome of one AccessOp against one tag.
type AccessResult struct {
	OpSpecID     uint16
	Write        bool
	OK           bool
	Data         []uint16 // read results
	WordsWritten int
}

// performAccess runs the round's access operations against a freshly
// acknowledged tag, charging the air time of Req_RN and each command, and
// returns the results. A failed Req_RN (never expected in simulation, but
// kept for fidelity) aborts all operations.
func (r *Reader) performAccess(tag *gen2.Tag, rn16 uint16, ops []AccessOp) []AccessResult {
	lt := r.cfg.Timing
	r.now += lt.ReqRNDuration()
	handle, ok := tag.HandleReqRN(rn16, r.scn.RNG())
	out := make([]AccessResult, 0, len(ops))
	for _, op := range ops {
		res := AccessResult{OpSpecID: op.OpSpecID, Write: op.Kind == AccessWrite}
		if ok {
			switch op.Kind {
			case AccessRead:
				r.now += lt.ReadDuration(op.WordCount)
				if words, rok := tag.HandleRead(handle, op.Bank, op.WordPtr, op.WordCount); rok {
					res.OK = true
					res.Data = words
				}
			case AccessWrite:
				r.now += lt.WriteDuration(len(op.Data))
				if tag.HandleBlockWrite(handle, op.Bank, op.WordPtr, op.Data) {
					res.OK = true
					res.WordsWritten = len(op.Data)
				}
			}
		}
		out = append(out, res)
	}
	return out
}
