package trace

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"tagwatch/internal/aloha"
	"tagwatch/internal/stats"
)

func genDefault(seed int64) Trace {
	tr, err := Generate(DefaultConfig(), rand.New(rand.NewSource(seed)))
	if err != nil {
		panic(err)
	}
	return tr
}

func TestTraceBasicShape(t *testing.T) {
	tr := genDefault(1)
	if len(tr.Tags) != 527 {
		t.Fatalf("tags = %d, want 527", len(tr.Tags))
	}
	// Total readings in the paper's order of magnitude (367,536 measured).
	if tr.Total < 100_000 || tr.Total > 900_000 {
		t.Fatalf("total readings = %d, want paper order (~367k)", tr.Total)
	}
	// Unique EPCs.
	seen := map[string]bool{}
	for _, tag := range tr.Tags {
		if seen[tag.EPC.String()] {
			t.Fatalf("duplicate EPC %s", tag.EPC)
		}
		seen[tag.EPC.String()] = true
	}
}

func TestHeroTagDominates(t *testing.T) {
	// The paper's tag #271: parked beside the gate, read ~90,000 times.
	tr := genDefault(2)
	hero := tr.MaxTag()
	if hero.Reads() < 40_000 {
		t.Fatalf("hottest parked tag read %d times, want tens of thousands", hero.Reads())
	}
	if !hero.Parked || hero.Gamma < 0.9 {
		t.Fatalf("hero must be a strongly-coupled parked tag: %+v", hero)
	}
	// It utterly dominates the median.
	med := stats.Median(tr.ReadCounts())
	if float64(hero.Reads()) < 100*med {
		t.Fatalf("hero (%d) should dwarf the median (%.0f)", hero.Reads(), med)
	}
}

func TestMoversReadLittle(t *testing.T) {
	// §2.4: "the real moving tags are typically read less than 5 times
	// when being moved across the gate" (expected ≈50 uncontended).
	tr := genDefault(3)
	var crossing []float64
	for _, tag := range tr.Tags {
		crossing = append(crossing, float64(tag.CrossingReads))
	}
	med := stats.Median(crossing)
	if med > 20 {
		t.Fatalf("median crossing reads = %.1f, want contention-starved (<20)", med)
	}
	if med < 1 {
		t.Fatalf("median crossing reads = %.1f — movers must still be read", med)
	}
}

func TestConcurrentMoversMinority(t *testing.T) {
	// Paper: at most ≈30 of 527 tags (≈5.7%) simultaneously conveyed.
	tr := genDefault(4)
	if tr.PeakConcurrentMovers > 30 {
		t.Fatalf("peak concurrent movers = %d, want ≤30", tr.PeakConcurrentMovers)
	}
	if tr.PeakConcurrentMovers < 1 {
		t.Fatal("no movers at all")
	}
}

func TestReadCountDistributionHeavyTail(t *testing.T) {
	// Fig. 4: 20% of tags read >205 times, 10% >655. Assert the shape
	// with slack: the top decile is far hotter than the median, and the
	// paper's two quantile anchors hold within loose bands.
	tr := genDefault(5)
	counts := tr.ReadCounts()
	over205 := 1 - stats.CDFAt(counts, 205)
	over655 := 1 - stats.CDFAt(counts, 655)
	if over205 < 0.08 || over205 > 0.45 {
		t.Fatalf("fraction read >205 = %.3f, want ≈0.20 band", over205)
	}
	if over655 < 0.04 || over655 > 0.30 {
		t.Fatalf("fraction read >655 = %.3f, want ≈0.10 band", over655)
	}
	if over655 >= over205 {
		t.Fatal("CDF must be monotone")
	}
	p90 := stats.Percentile(counts, 0.9)
	med := stats.Median(counts)
	if p90 < 5*med {
		t.Fatalf("p90 (%.0f) must dwarf the median (%.0f): heavy tail", p90, med)
	}
}

func TestTimelineCoversTrace(t *testing.T) {
	tr := genDefault(6)
	var sum int
	active := 0
	for _, c := range tr.Timeline {
		sum += c
		if c > 0 {
			active++
		}
	}
	if sum != tr.Total {
		t.Fatalf("timeline sums to %d, total %d", sum, tr.Total)
	}
	// The gate is busy most of the time (parked tags are always read).
	if active < len(tr.Timeline)*3/4 {
		t.Fatalf("only %d of %d minutes active", active, len(tr.Timeline))
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	a := genDefault(7)
	b := genDefault(7)
	if a.Total != b.Total || len(a.Tags) != len(b.Tags) {
		t.Fatal("same seed must reproduce the trace")
	}
	c := genDefault(8)
	if a.Total == c.Total {
		t.Fatal("different seeds should differ (astronomically unlikely collision)")
	}
}

func TestShortCustomTrace(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Duration = 10 * time.Minute
	cfg.Arrivals = 40
	cfg.MeanParkDwell = 3 * time.Minute
	tr, err := Generate(cfg, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Tags) == 0 || len(tr.Tags) > 40 {
		t.Fatalf("tags = %d", len(tr.Tags))
	}
	for _, tag := range tr.Tags {
		if tag.Depart < tag.Arrive {
			t.Fatalf("tag departs before arriving: %+v", tag)
		}
		if tag.Depart > cfg.Duration {
			t.Fatalf("tag departs after the trace ends: %+v", tag)
		}
		if tag.Parked && (tag.Gamma <= 0 || tag.Gamma > 1) {
			t.Fatalf("gamma out of range: %+v", tag)
		}
	}
}

func TestZeroStepAndCostDefault(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Step = 0
	cfg.Cost = aloha.CostModel{}
	cfg.Duration = 5 * time.Minute
	cfg.Arrivals = 10
	tr, err := Generate(cfg, rand.New(rand.NewSource(10)))
	if err != nil {
		t.Fatalf("zero step/cost must default, not fail: %v", err)
	}
	if len(tr.Tags) == 0 {
		t.Fatal("defaults must fill in and generate")
	}
}

func TestGenerateRejectsDegenerateConfigs(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"zero duration", func(c *Config) { c.Duration = 0 }, "non-positive duration"},
		{"negative duration", func(c *Config) { c.Duration = -time.Hour }, "non-positive duration"},
		{"zero arrivals", func(c *Config) { c.Arrivals = 0 }, "non-positive arrivals"},
		{"negative arrivals", func(c *Config) { c.Arrivals = -5 }, "non-positive arrivals"},
		{"zero gamma", func(c *Config) { c.GammaAlpha = 0 }, "gamma alpha"},
		{"negative gamma", func(c *Config) { c.GammaAlpha = -2 }, "gamma alpha"},
		{"zero cross", func(c *Config) { c.CrossTime = 0 }, "cross time"},
		{"bad park prob", func(c *Config) { c.ParkProb = 1.5 }, "park probability"},
		{"park no dwell", func(c *Config) { c.MeanParkDwell = 0 }, "dwell"},
		{"negative step", func(c *Config) { c.Step = -time.Second }, "negative step"},
		{"step too coarse", func(c *Config) { c.Duration, c.Step = time.Second, time.Minute }, "shorter than step"},
	}
	for _, tc := range cases {
		cfg := DefaultConfig()
		tc.mut(&cfg)
		_, err := Generate(cfg, rand.New(rand.NewSource(1)))
		if err == nil {
			t.Errorf("%s: Generate accepted a degenerate config", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestPoissonMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, mean := range []float64{0.3, 3, 80} {
		var sum, sq float64
		const n = 20000
		for i := 0; i < n; i++ {
			k := float64(poisson(rng, mean))
			sum += k
			sq += k * k
		}
		m := sum / n
		v := sq/n - m*m
		if m < mean*0.93 || m > mean*1.07 {
			t.Fatalf("poisson(%v) mean = %v", mean, m)
		}
		if v < mean*0.85 || v > mean*1.15 {
			t.Fatalf("poisson(%v) variance = %v", mean, v)
		}
	}
	if poisson(rng, 0) != 0 || poisson(rng, -1) != 0 {
		t.Fatal("non-positive mean must yield 0")
	}
}

func TestRateAdaptiveRestoresCrossingReads(t *testing.T) {
	// The paper's motivating claim, closed end-to-end: each parcel should
	// be read ≈50 times while crossing (≈1 s at the uncontended ~48 Hz);
	// under reading-all the parked population starves crossings to single
	// digits; under the rate-adaptive policy the expectation is restored.
	base, err := Generate(DefaultConfig(), rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.RateAdaptive = true
	adaptive, err := Generate(cfg, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}

	med := func(tr Trace) float64 {
		var xs []float64
		for _, tag := range tr.Tags {
			xs = append(xs, float64(tag.CrossingReads))
		}
		return stats.Median(xs)
	}
	mb, ma := med(base), med(adaptive)
	if ma < 3*mb {
		t.Fatalf("rate-adaptive median crossing reads %.0f must dwarf read-all %.0f", ma, mb)
	}
	if ma < 25 || ma > 90 {
		t.Fatalf("rate-adaptive crossing reads = %.0f, want ≈50 (the paper's expectation)", ma)
	}
	// And the parked flood is gone: total readings collapse.
	if adaptive.Total > base.Total/3 {
		t.Fatalf("adaptive total %d should be far below read-all %d", adaptive.Total, base.Total)
	}
}
