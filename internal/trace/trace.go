// Package trace generates sorting-facility reading workloads calibrated to
// the paper's TrackPoint case study (§2.4, Figs. 3–4): a gate of reader
// antennas above a conveyor, parcels crossing briefly, and sorted parcels
// parked near the gate hogging the channel for hours.
//
// The generator is statistical rather than slot-exact: tags in range share
// the channel under the inventory-cost model Λ(n) = 1/C(n), crossing tags
// are exposed for about a second (the paper expects ≈50 readings
// uncontended and observes <5 under contention), and parked tags are read
// at a distance-dependent fraction γ of the full rate, drawn heavy-tailed
// — the mechanism behind "tag #271", a parcel parked beside the gate that
// accumulated ~90,000 readings in four hours.
package trace

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"tagwatch/internal/aloha"
	"tagwatch/internal/epc"
)

// Config tunes the facility model.
type Config struct {
	// Duration is the trace length (paper: ≈4 h).
	Duration time.Duration
	// Arrivals is the expected total number of distinct tags (paper: 527).
	Arrivals int
	// CrossTime is the mean conveyor transit through the gate's field.
	CrossTime time.Duration
	// ParkProb is the probability a sorted parcel parks within reader
	// range instead of leaving.
	ParkProb float64
	// MeanParkDwell is the mean parked dwell before pickup (exponential).
	MeanParkDwell time.Duration
	// Cost converts concurrent population into per-tag reading rate.
	Cost aloha.CostModel
	// GammaAlpha shapes the parked-tag coupling γ ∈ (0, 1]: γ = u^GammaAlpha
	// for uniform u, so larger values skew toward weak coupling (marginal
	// range) with a heavy right tail of strongly-coupled bays.
	GammaAlpha float64
	// BatchMean is the mean batch size of arrivals: parcels reach the gate
	// on shared trays/carts, so tens can be on the conveyor at once (the
	// paper observes up to ≈30 simultaneous movers).
	BatchMean float64
	// RateAdaptive replays the facility under Tagwatch's policy instead of
	// reading-all: crossing parcels share the channel only with each other
	// (plus a small Phase I apportionment), while parked parcels are read
	// once per assessment cycle. This answers the paper's motivating
	// question — each crossing parcel should be read ≈50 times, and is,
	// once the parked population stops hogging the channel.
	RateAdaptive bool
	// PhaseIShare is the fraction of channel time Phase I consumes in
	// rate-adaptive mode (assessment of the whole population).
	PhaseIShare float64
	// Step is the simulation resolution.
	Step time.Duration
}

// Validate rejects configurations that would generate degenerate traces.
// Zero Step, Cost, and BatchMean are defaulted by Generate, not rejected;
// the trace-defining knobs must be explicitly positive.
func (c Config) Validate() error {
	if c.Duration <= 0 {
		return fmt.Errorf("trace: non-positive duration %v", c.Duration)
	}
	if c.Arrivals <= 0 {
		return fmt.Errorf("trace: non-positive arrivals %d", c.Arrivals)
	}
	if c.GammaAlpha <= 0 {
		return fmt.Errorf("trace: non-positive gamma alpha %v (parked coupling undefined)", c.GammaAlpha)
	}
	if c.CrossTime <= 0 {
		return fmt.Errorf("trace: non-positive cross time %v", c.CrossTime)
	}
	if c.ParkProb < 0 || c.ParkProb > 1 {
		return fmt.Errorf("trace: park probability %v outside [0,1]", c.ParkProb)
	}
	if c.ParkProb > 0 && c.MeanParkDwell <= 0 {
		return fmt.Errorf("trace: parking enabled with non-positive dwell %v", c.MeanParkDwell)
	}
	if c.Step < 0 {
		return fmt.Errorf("trace: negative step %v", c.Step)
	}
	if c.Duration/cmpStep(c.Step) < 1 {
		return fmt.Errorf("trace: duration %v shorter than step %v", c.Duration, cmpStep(c.Step))
	}
	return nil
}

// cmpStep is the step Generate will actually use for a given config.
func cmpStep(step time.Duration) time.Duration {
	if step <= 0 {
		return time.Second
	}
	return step
}

// DefaultConfig reproduces the paper's trace statistics.
func DefaultConfig() Config {
	// Calibration: ≈100 parked tags in range at steady state pins the
	// shared IRR near 4 Hz; with the heavy-tailed coupling (mean γ ≈ 0.06)
	// the gate then produces ≈25 readings/s — the paper's 367,536 readings
	// over 4 h — while a fully-coupled parked parcel (tag #271) alone
	// accrues tens of thousands.
	return Config{
		Duration:      4 * time.Hour,
		Arrivals:      527,
		CrossTime:     time.Second,
		ParkProb:      0.45,
		MeanParkDwell: 100 * time.Minute,
		Cost:          aloha.PaperCostModel(),
		GammaAlpha:    15,
		BatchMean:     8,
		Step:          time.Second,
	}
}

// TagRecord summarises one tag's life in the trace.
type TagRecord struct {
	EPC           epc.EPC
	Arrive        time.Duration
	Depart        time.Duration // when it left range (Duration = end of trace if parked throughout)
	Parked        bool          // parked in range after crossing
	Gamma         float64       // parked coupling (1 for the crossing window)
	CrossingReads int           // readings while on the conveyor
	ParkedReads   int           // readings while parked
}

// Reads is the tag's total reading count.
func (t TagRecord) Reads() int { return t.CrossingReads + t.ParkedReads }

// Trace is a generated workload.
type Trace struct {
	Config Config
	Tags   []TagRecord
	// Timeline holds total readings per minute (the Fig. 3 series).
	Timeline []int
	// PeakConcurrentMovers is the largest number of tags simultaneously
	// on the conveyor (paper: ≈30, i.e. ≤5.7% of tags).
	PeakConcurrentMovers int
	Total                int
}

// MaxTag returns the most-read tag — the paper's "tag #271".
func (tr Trace) MaxTag() TagRecord {
	var best TagRecord
	for _, t := range tr.Tags {
		if t.Reads() > best.Reads() {
			best = t
		}
	}
	return best
}

// ReadCounts returns all per-tag totals as float64s for CDF analysis
// (Fig. 4).
func (tr Trace) ReadCounts() []float64 {
	out := make([]float64, len(tr.Tags))
	for i, t := range tr.Tags {
		out[i] = float64(t.Reads())
	}
	return out
}

type liveTag struct {
	idx      int
	crossEnd time.Duration
	parkEnd  time.Duration // 0 when not parked
	gamma    float64
}

// Generate runs the facility model. A config that would produce a
// degenerate trace (see Config.Validate) is rejected with an error rather
// than silently patched.
func Generate(cfg Config, rng *rand.Rand) (Trace, error) {
	if err := cfg.Validate(); err != nil {
		return Trace{}, err
	}
	cfg.Step = cmpStep(cfg.Step)
	if cfg.Cost == (aloha.CostModel{}) {
		cfg.Cost = aloha.PaperCostModel()
	}
	tr := Trace{Config: cfg}
	steps := int(cfg.Duration / cfg.Step)
	stepSec := cfg.Step.Seconds()
	// Schedule exactly cfg.Arrivals arrivals (the trace is defined by its
	// tag count) in batches at uniform batch times: parcels arrive on
	// shared trays, which is what puts tens of movers on the conveyor at
	// once.
	if cfg.BatchMean < 1 {
		cfg.BatchMean = 1
	}
	arrivalsAt := make(map[int]int, cfg.Arrivals)
	remaining := cfg.Arrivals - 1 // index 0 is the hero tag below
	for remaining > 0 {
		k := 1 + poisson(rng, cfg.BatchMean-1)
		if k > remaining {
			k = remaining
		}
		arrivalsAt[rng.Intn(steps)] += k
		remaining -= k
	}

	minutes := int(cfg.Duration/time.Minute) + 1
	tr.Timeline = make([]int, minutes)

	var live []liveTag
	// One guaranteed long-parked strongly-coupled parcel: the paper's tag
	// #271 arrives early and never leaves.
	hero := TagRecord{
		EPC:    epcFor(0),
		Arrive: 0,
		Parked: true,
		Gamma:  1,
	}
	tr.Tags = append(tr.Tags, hero)
	live = append(live, liveTag{idx: 0, crossEnd: cfg.CrossTime, parkEnd: cfg.Duration, gamma: 1})

	for s := 0; s < steps; s++ {
		now := time.Duration(s) * cfg.Step
		for a := 0; a < arrivalsAt[s]; a++ {
			idx := len(tr.Tags)
			rec := TagRecord{EPC: epcFor(idx), Arrive: now}
			lt := liveTag{idx: idx, crossEnd: now + jitter(rng, cfg.CrossTime)}
			if rng.Float64() < cfg.ParkProb {
				rec.Parked = true
				rec.Gamma = math.Pow(rng.Float64(), cfg.GammaAlpha)
				if rec.Gamma < 0.005 {
					rec.Gamma = 0.005
				}
				dwell := time.Duration(rng.ExpFloat64() * float64(cfg.MeanParkDwell))
				lt.parkEnd = lt.crossEnd + dwell
				lt.gamma = rec.Gamma
			}
			tr.Tags = append(tr.Tags, rec)
			live = append(live, lt)
		}

		// Population in range right now.
		var n, movers int
		for _, lt := range live {
			if now < lt.crossEnd {
				n++
				movers++
			} else if now < lt.parkEnd {
				n++
			}
		}
		if movers > tr.PeakConcurrentMovers {
			tr.PeakConcurrentMovers = movers
		}
		if n == 0 {
			continue
		}
		// Reading-all: everyone shares Λ(n). Rate-adaptive: Phase II reads
		// only the movers (they share Λ(movers) on the remaining channel
		// time), and parked parcels are read ≈ once per cycle in Phase I.
		irr := cfg.Cost.IRR(n)
		moverIRR := irr
		parkedScale := 1.0
		if cfg.RateAdaptive {
			share := cfg.PhaseIShare
			if share <= 0 || share >= 1 {
				share = 0.1
			}
			if movers > 0 {
				moverIRR = (1 - share) * cfg.Cost.IRR(movers)
			}
			// One Phase I reading per parked tag per cycle (~5 s).
			parkedScale = (1.0 / 5.0) / math.Max(irr, 1e-9)
		}

		minute := int(now / time.Minute)
		keep := live[:0]
		for _, lt := range live {
			switch {
			case now < lt.crossEnd:
				k := poisson(rng, moverIRR*stepSec)
				tr.Tags[lt.idx].CrossingReads += k
				tr.Timeline[minute] += k
				tr.Total += k
				keep = append(keep, lt)
			case now < lt.parkEnd:
				k := poisson(rng, parkedScale*lt.gamma*irr*stepSec)
				tr.Tags[lt.idx].ParkedReads += k
				tr.Timeline[minute] += k
				tr.Total += k
				keep = append(keep, lt)
			default:
				tr.Tags[lt.idx].Depart = now
			}
		}
		live = keep
	}
	for _, lt := range live {
		tr.Tags[lt.idx].Depart = cfg.Duration
	}
	return tr, nil
}

// epcFor derives a deterministic EPC for tag index i.
func epcFor(i int) epc.EPC {
	pop, err := epc.SequentialPopulation([]byte{0x30, 0x08, 0x33}, uint32(i), 1, 96)
	if err != nil {
		panic(err)
	}
	return pop[0]
}

// jitter returns a duration uniform in [0.5·d, 1.5·d).
func jitter(rng *rand.Rand, d time.Duration) time.Duration {
	return time.Duration((0.5 + rng.Float64()) * float64(d))
}

// poisson draws a Poisson variate with the given mean (Knuth for small
// means, normal approximation for large ones).
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		v := mean + math.Sqrt(mean)*rng.NormFloat64()
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
