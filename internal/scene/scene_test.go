package scene

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"tagwatch/internal/epc"
	"tagwatch/internal/rf"
)

func testScene(seed int64) *Scene {
	rng := rand.New(rand.NewSource(seed))
	p := rf.DefaultParams()
	p.PhaseNoiseStd = 0
	p.RSSNoiseStd = 0
	p.RSSQuantum = 0
	return New(rf.NewChannel(p, rng), rng)
}

func TestStationary(t *testing.T) {
	s := Stationary{P: rf.Pt(1, 2, 3)}
	if s.Pos(0) != rf.Pt(1, 2, 3) || s.Pos(time.Hour) != rf.Pt(1, 2, 3) {
		t.Fatal("stationary must not move")
	}
	if s.Moving(time.Second) {
		t.Fatal("stationary must not report motion")
	}
}

func TestCircleKinematics(t *testing.T) {
	// Paper rig: r = 20 cm, v = 0.7 m/s.
	c := Circle{Center: rf.Pt(0, 0, 0), Radius: 0.2, Speed: 0.7}
	p0 := c.Pos(0)
	if math.Abs(p0.Dist(rf.Pt(0.2, 0, 0))) > 1e-12 {
		t.Fatalf("t=0 position %v", p0)
	}
	// After one full period the train returns to the start.
	period := time.Duration(2 * math.Pi * 0.2 / 0.7 * float64(time.Second.Nanoseconds()))
	if d := c.Pos(period).Dist(p0); d > 1e-6 {
		t.Fatalf("after one period distance to start = %v", d)
	}
	// Speed check: positions 10 ms apart are ~7 mm apart.
	d := c.Pos(0).Dist(c.Pos(10 * time.Millisecond))
	if math.Abs(d-0.007) > 1e-4 {
		t.Fatalf("10 ms displacement = %v m, want ≈0.007", d)
	}
	if !c.Moving(0) {
		t.Fatal("rotating circle must report motion")
	}
	if (Circle{Radius: 0, Speed: 1}).Moving(0) {
		t.Fatal("zero-radius circle is stationary")
	}
	if (Circle{Radius: 0, Speed: 1, Center: rf.Pt(1, 1, 1)}).Pos(0) != rf.Pt(1, 1, 1) {
		t.Fatal("zero-radius circle pins at centre")
	}
}

func TestLineConveyor(t *testing.T) {
	l := Line{
		Start:  rf.Pt(0, 0, 0),
		Dir:    rf.Pt(2, 0, 0), // non-unit on purpose
		Speed:  1.5,
		Depart: time.Second,
		Arrive: 3 * time.Second,
	}
	if l.Pos(0) != l.Start || l.Moving(0) {
		t.Fatal("before departure the parcel is parked")
	}
	mid := l.Pos(2 * time.Second)
	if math.Abs(mid.X-1.5) > 1e-9 {
		t.Fatalf("1 s after departure at 1.5 m/s should be x=1.5, got %v", mid)
	}
	if !l.Moving(2 * time.Second) {
		t.Fatal("mid-transit must report motion")
	}
	end := l.Pos(10 * time.Second)
	if math.Abs(end.X-3.0) > 1e-9 || l.Moving(10*time.Second) {
		t.Fatalf("after arrival the parcel parks at x=3: %v", end)
	}
	if (Line{Dir: rf.Pt(0, 0, 0), Speed: 1}).Pos(time.Second) != (rf.Point{}) {
		t.Fatal("zero direction stays put")
	}
}

func TestStepMove(t *testing.T) {
	s := StepMove{From: rf.Pt(1, 0, 0), Delta: rf.Pt(0.03, 0, 0), At: time.Second}
	if s.Pos(0) != rf.Pt(1, 0, 0) {
		t.Fatal("before step")
	}
	if s.Pos(2*time.Second) != rf.Pt(1.03, 0, 0) {
		t.Fatal("after instantaneous step")
	}
	// Gradual move.
	g := StepMove{From: rf.Pt(0, 0, 0), Delta: rf.Pt(1, 0, 0), At: 0, Over: time.Second}
	if p := g.Pos(500 * time.Millisecond); math.Abs(p.X-0.5) > 1e-9 {
		t.Fatalf("mid-step position %v", p)
	}
	if !g.Moving(500 * time.Millisecond) {
		t.Fatal("mid-step must report motion")
	}
	if g.Moving(2 * time.Second) {
		t.Fatal("after step must be parked")
	}
}

func TestWaypoints(t *testing.T) {
	w := Waypoints{
		T: []time.Duration{0, time.Second, 2 * time.Second},
		P: []rf.Point{rf.Pt(0, 0, 0), rf.Pt(1, 0, 0), rf.Pt(1, 1, 0)},
	}
	if w.Pos(-time.Second) != rf.Pt(0, 0, 0) {
		t.Fatal("clamp before first waypoint")
	}
	if p := w.Pos(500 * time.Millisecond); math.Abs(p.X-0.5) > 1e-9 {
		t.Fatalf("interpolated position %v", p)
	}
	if p := w.Pos(1500 * time.Millisecond); math.Abs(p.Y-0.5) > 1e-9 {
		t.Fatalf("second segment position %v", p)
	}
	if w.Pos(time.Hour) != rf.Pt(1, 1, 0) {
		t.Fatal("clamp after last waypoint")
	}
	if !w.Moving(500*time.Millisecond) || w.Moving(3*time.Second) {
		t.Fatal("motion flags wrong")
	}
	if (Waypoints{}).Pos(0) != (rf.Point{}) {
		t.Fatal("empty waypoints yield origin")
	}
}

func TestWaypointsMismatchedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched waypoint arrays must panic")
		}
	}()
	w := Waypoints{T: []time.Duration{0}, P: []rf.Point{{}, {}}}
	w.Pos(time.Second)
}

func TestSceneTagsAndAntennas(t *testing.T) {
	s := testScene(1)
	rng := rand.New(rand.NewSource(2))
	pop, err := epc.RandomPopulation(rng, 3, 96)
	if err != nil {
		t.Fatal(err)
	}
	for i, code := range pop {
		s.AddTag(code, Stationary{P: rf.Pt(float64(i), 0, 0)})
	}
	if id := s.AddAntenna(rf.Pt(0, 0, 2)); id != 1 {
		t.Fatalf("first antenna ID = %d, want 1", id)
	}
	if id := s.AddAntenna(rf.Pt(5, 5, 2)); id != 2 {
		t.Fatalf("second antenna ID = %d, want 2", id)
	}
	if got := s.FindTag(pop[1]); got == nil || got.EPC != pop[1] {
		t.Fatal("FindTag must locate existing tag")
	}
	if s.FindTag(epc.MustParse("00ff")) != nil {
		t.Fatal("FindTag must return nil for unknown EPC")
	}
	if s.Tags[0].Memory.EPC() != pop[0] {
		t.Fatal("tag memory must carry its EPC")
	}
}

func TestSceneMeasureTagDeterministic(t *testing.T) {
	s := testScene(3)
	tag := s.AddTag(epc.MustParse("30f4ab12cd0045e100000001"), Stationary{P: rf.Pt(2, 0, 0)})
	ant := Antenna{ID: 1, Pos: rf.Pt(0, 0, 0)}
	m1 := s.MeasureTag(tag, ant, 0, 5)
	m2 := s.MeasureTag(tag, ant, time.Second, 5)
	if rf.PhaseDist(m1.PhaseRad, m2.PhaseRad) > 1e-9 {
		t.Fatal("stationary tag in a static scene must hold its phase")
	}
	if !m1.Readable {
		t.Fatal("2 m link must be readable")
	}
}

func TestSceneWalkersPerturbPhase(t *testing.T) {
	s := testScene(4)
	tag := s.AddTag(epc.MustParse("30f4ab12cd0045e100000001"), Stationary{P: rf.Pt(3, 0, 0)})
	ant := Antenna{ID: 1, Pos: rf.Pt(0, 0, 0)}
	before := s.MeasureTag(tag, ant, 0, 0)
	// A walker crossing near the link at t=10s.
	s.AddWalker(Waypoints{
		T: []time.Duration{9 * time.Second, 11 * time.Second},
		P: []rf.Point{rf.Pt(1.5, -5, 0), rf.Pt(1.5, 5, 0)},
	}, complex(0.5, 0))
	far := s.MeasureTag(tag, ant, 0, 0) // walker still 5 m off the link
	// At t=10.3 s the walker is 1.5 m off the LOS: the path excess puts the
	// reflection well out of phase with the direct path. (At exactly t=10 s
	// it stands *on* the segment, where the excess — and thus the phase
	// perturbation — is zero.)
	near := s.MeasureTag(tag, ant, 10300*time.Millisecond, 0)
	if rf.PhaseDist(before.PhaseRad, far.PhaseRad) > 0.05 {
		t.Fatal("distant walker should barely shift phase")
	}
	if rf.PhaseDist(before.PhaseRad, near.PhaseRad) < 0.05 {
		t.Fatal("walker crossing the first Fresnel zones must shift phase")
	}
}

func TestSceneMovingTags(t *testing.T) {
	s := testScene(5)
	moving := s.AddTag(epc.MustParse("000000000000000000000001"), Circle{Radius: 0.2, Speed: 0.7})
	parked := s.AddTag(epc.MustParse("000000000000000000000002"), Stationary{P: rf.Pt(1, 1, 0)})
	got := s.MovingTags(time.Second)
	if !got[moving.EPC] || got[parked.EPC] {
		t.Fatalf("MovingTags = %v", got)
	}
	if len(s.ReflectorsAt(0)) != 0 {
		t.Fatal("no walkers yet")
	}
}

func TestThetaZeroVariesAcrossTags(t *testing.T) {
	s := testScene(6)
	a := s.AddTag(epc.MustParse("01"), Stationary{})
	b := s.AddTag(epc.MustParse("02"), Stationary{})
	if a.Theta0 == b.Theta0 {
		t.Fatal("tags should draw distinct θ₀")
	}
	if a.Theta0 < 0 || a.Theta0 >= 2*math.Pi {
		t.Fatalf("θ₀ out of range: %v", a.Theta0)
	}
}
