// Package scene holds the kinematic world the simulator reads from: tag and
// antenna placement, tag motion (trajectories), and moving reflectors
// (people walking through the paper's office). Time inside the simulator is
// virtual — a time.Duration offset from the start of the experiment — so
// experiments covering hours of trace (Fig. 3) run in milliseconds and are
// perfectly reproducible.
package scene

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"tagwatch/internal/epc"
	"tagwatch/internal/rf"
)

// Trajectory yields the position of an object at virtual time t. A
// trajectory also knows whether the object is in motion at t, which is the
// ground truth the motion-assessment experiments score against.
type Trajectory interface {
	Pos(t time.Duration) rf.Point
	Moving(t time.Duration) bool
}

// Stationary is a trajectory pinned at one point.
type Stationary struct{ P rf.Point }

// Pos implements Trajectory.
func (s Stationary) Pos(time.Duration) rf.Point { return s.P }

// Moving implements Trajectory.
func (s Stationary) Moving(time.Duration) bool { return false }

// Circle moves along a circle of the given radius at constant speed — the
// paper's toy train on a circular/oval track and its spinning turntable.
type Circle struct {
	Center     rf.Point
	Radius     float64 // m
	Speed      float64 // m/s along the arc
	StartAngle float64 // rad
}

// Pos implements Trajectory.
func (c Circle) Pos(t time.Duration) rf.Point {
	if c.Radius == 0 {
		return c.Center
	}
	ang := c.StartAngle + c.Speed/c.Radius*t.Seconds()
	return rf.Pt(c.Center.X+c.Radius*math.Cos(ang), c.Center.Y+c.Radius*math.Sin(ang), c.Center.Z)
}

// Moving implements Trajectory.
func (c Circle) Moving(time.Duration) bool { return c.Speed != 0 && c.Radius != 0 }

// Line moves from Start in direction Dir (normalised internally) at Speed,
// beginning at Depart and stopping (parking) at Arrive — a parcel on a
// conveyor. Before Depart and after Arrive the object is stationary.
type Line struct {
	Start  rf.Point
	Dir    rf.Point
	Speed  float64 // m/s
	Depart time.Duration
	Arrive time.Duration
}

// Pos implements Trajectory.
func (l Line) Pos(t time.Duration) rf.Point {
	if t < l.Depart {
		return l.Start
	}
	if t > l.Arrive {
		t = l.Arrive
	}
	n := l.Dir.Norm()
	if n == 0 {
		return l.Start
	}
	d := l.Speed * (t - l.Depart).Seconds()
	return l.Start.Add(l.Dir.Scale(d / n))
}

// Moving implements Trajectory.
func (l Line) Moving(t time.Duration) bool {
	return l.Speed != 0 && t >= l.Depart && t <= l.Arrive
}

// StepMove sits at From until At, then translates to From+Delta over Over
// (instantaneous if Over is zero) and parks — the displacement rig of the
// sensitivity experiment (Fig. 13: "move a tag away in a random direction
// with a displacement ranging from 1 cm to 5 cm").
type StepMove struct {
	From  rf.Point
	Delta rf.Point
	At    time.Duration
	Over  time.Duration
}

// Pos implements Trajectory.
func (s StepMove) Pos(t time.Duration) rf.Point {
	switch {
	case t < s.At:
		return s.From
	case s.Over <= 0 || t >= s.At+s.Over:
		return s.From.Add(s.Delta)
	default:
		frac := float64(t-s.At) / float64(s.Over)
		return s.From.Add(s.Delta.Scale(frac))
	}
}

// Moving implements Trajectory.
func (s StepMove) Moving(t time.Duration) bool {
	return t >= s.At && (s.Over > 0 && t < s.At+s.Over || s.Over <= 0 && t == s.At)
}

// Waypoints interpolates linearly between timestamped points; before the
// first and after the last waypoint the object is parked.
type Waypoints struct {
	T []time.Duration
	P []rf.Point
}

// Pos implements Trajectory.
func (w Waypoints) Pos(t time.Duration) rf.Point {
	if len(w.P) == 0 {
		return rf.Point{}
	}
	if len(w.T) != len(w.P) {
		panic(fmt.Sprintf("scene: waypoints have %d times but %d points", len(w.T), len(w.P)))
	}
	if t <= w.T[0] {
		return w.P[0]
	}
	last := len(w.T) - 1
	if t >= w.T[last] {
		return w.P[last]
	}
	for i := 1; i <= last; i++ {
		if t <= w.T[i] {
			span := w.T[i] - w.T[i-1]
			if span <= 0 {
				return w.P[i]
			}
			frac := float64(t-w.T[i-1]) / float64(span)
			return w.P[i-1].Add(w.P[i].Sub(w.P[i-1]).Scale(frac))
		}
	}
	return w.P[last]
}

// Moving implements Trajectory.
func (w Waypoints) Moving(t time.Duration) bool {
	if len(w.T) < 2 || t < w.T[0] || t > w.T[len(w.T)-1] {
		return false
	}
	for i := 1; i < len(w.T); i++ {
		if t <= w.T[i] {
			return w.P[i] != w.P[i-1]
		}
	}
	return false
}

// Tag is one physical tag in the scene: its EPC identity, Gen2 memory
// layout, kinematics, and constant backscatter phase offset θ₀.
type Tag struct {
	EPC    epc.EPC
	Memory *epc.Memory
	Traj   Trajectory
	Theta0 float64 // constant tag phase offset in rad
}

// Walker is a moving reflector — a person or vehicle that perturbs the
// multipath environment without carrying a tag.
type Walker struct {
	Traj  Trajectory
	Coeff complex128
}

// Antenna is one reader antenna port.
type Antenna struct {
	ID  int // 1-based, as LLRP numbers antenna ports
	Pos rf.Point
}

// Scene is the complete simulated world.
type Scene struct {
	Tags     []*Tag
	Walkers  []Walker
	Antennas []Antenna
	Channel  *rf.Channel
	rng      *rand.Rand
}

// New builds an empty scene with the given RF channel and randomness
// source. Every stochastic draw in the simulation flows from rng, so a
// fixed seed reproduces an entire experiment.
func New(ch *rf.Channel, rng *rand.Rand) *Scene {
	return &Scene{Channel: ch, rng: rng}
}

// RNG exposes the scene's randomness source for components that must share
// the deterministic stream (the reader's slot draws, measurement noise).
func (s *Scene) RNG() *rand.Rand { return s.rng }

// AddTag places a tag with the given identity and trajectory, drawing a
// random θ₀, and returns it.
func (s *Scene) AddTag(code epc.EPC, traj Trajectory) *Tag {
	t := &Tag{EPC: code, Memory: epc.NewMemory(code), Traj: traj, Theta0: s.rng.Float64() * 2 * math.Pi}
	s.Tags = append(s.Tags, t)
	return t
}

// AddWalker adds a moving reflector.
func (s *Scene) AddWalker(traj Trajectory, coeff complex128) {
	s.Walkers = append(s.Walkers, Walker{Traj: traj, Coeff: coeff})
}

// AddAntenna places a reader antenna and returns its 1-based port ID.
func (s *Scene) AddAntenna(pos rf.Point) int {
	id := len(s.Antennas) + 1
	s.Antennas = append(s.Antennas, Antenna{ID: id, Pos: pos})
	return id
}

// ReflectorsAt snapshots all walker positions at virtual time t.
func (s *Scene) ReflectorsAt(t time.Duration) []rf.Reflector {
	if len(s.Walkers) == 0 {
		return nil
	}
	out := make([]rf.Reflector, len(s.Walkers))
	for i, w := range s.Walkers {
		out[i] = rf.Reflector{Pos: w.Traj.Pos(t), Coeff: w.Coeff}
	}
	return out
}

// MeasureTag produces one physical-layer observation of tag from the given
// antenna at virtual time t on hop channel chanIdx.
func (s *Scene) MeasureTag(tag *Tag, ant Antenna, t time.Duration, chanIdx int) rf.Measurement {
	return s.Channel.Measure(s.rng, ant.Pos, tag.Traj.Pos(t), tag.Theta0, chanIdx, s.ReflectorsAt(t))
}

// FindTag returns the scene tag with the given EPC, or nil.
func (s *Scene) FindTag(code epc.EPC) *Tag {
	for _, t := range s.Tags {
		if t.EPC == code {
			return t
		}
	}
	return nil
}

// MovingTags returns the EPCs of tags whose trajectories report motion at
// virtual time t — the experiment ground truth.
func (s *Scene) MovingTags(t time.Duration) map[epc.EPC]bool {
	out := make(map[epc.EPC]bool)
	for _, tag := range s.Tags {
		if tag.Traj.Moving(t) {
			out[tag.EPC] = true
		}
	}
	return out
}

// OfficeWalker builds a person-like trajectory: long seated pauses at a
// small set of habitual spots, punctuated by short walks between them at
// walking speed. Habitual spots quantise the multipath a tag sees into
// recurring states — the environment the paper's GMM is designed for.
func OfficeWalker(rng *rand.Rand, spots []rf.Point, total time.Duration) Trajectory {
	if len(spots) == 0 {
		return Stationary{}
	}
	const walkSpeed = 0.8 // m/s
	w := Waypoints{}
	pos := spots[0]
	t := time.Duration(0)
	w.T = append(w.T, t)
	w.P = append(w.P, pos)
	for t < total {
		pause := time.Duration(20+rng.Intn(40)) * time.Second
		t += pause
		w.T = append(w.T, t)
		w.P = append(w.P, pos)
		next := spots[rng.Intn(len(spots))]
		walk := time.Duration(float64(pos.Dist(next))/walkSpeed*float64(time.Second)) + time.Second
		t += walk
		pos = next
		w.T = append(w.T, t)
		w.P = append(w.P, pos)
	}
	return w
}
