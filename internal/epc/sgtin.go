package epc

import (
	"fmt"
	"strings"
)

// SGTIN-96 is the GS1 serialised trade-item number encoding that dominates
// retail EPC deployments — the kind of identities a supermarket or
// sorting-facility deployment of Tagwatch actually reads. Layout (MSB
// first):
//
//	header(8) = 0x30 | filter(3) | partition(3) |
//	companyPrefix(20..40) | itemReference(24..4) | serial(38)
//
// The partition value divides the 44 bits between company prefix and item
// reference according to the GS1 partition table.

// SGTINHeader is the EPC header byte identifying SGTIN-96.
const SGTINHeader = 0x30

// SGTIN is a decoded SGTIN-96 identity.
type SGTIN struct {
	// Filter is the 3-bit filter value (0 = all others, 1 = POS item, …).
	Filter uint8
	// Partition selects the company-prefix/item-reference split (0–6).
	Partition uint8
	// CompanyPrefix is the GS1 company prefix (decimal semantics).
	CompanyPrefix uint64
	// ItemReference is the item reference (with indicator digit).
	ItemReference uint64
	// Serial is the 38-bit serial number.
	Serial uint64
}

// sgtinPartition holds the GS1 partition table: bits of company prefix and
// item reference for each partition value.
var sgtinPartition = [7]struct{ company, item uint }{
	{40, 4}, {37, 7}, {34, 10}, {30, 14}, {27, 17}, {24, 20}, {20, 24},
}

// maxBits returns the largest value representable in n bits.
func maxBits(n uint) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return 1<<n - 1
}

// Encode packs the SGTIN into a 96-bit EPC.
func (s SGTIN) Encode() (EPC, error) {
	if s.Filter > 7 {
		return EPC{}, fmt.Errorf("epc: SGTIN filter %d out of range", s.Filter)
	}
	if int(s.Partition) >= len(sgtinPartition) {
		return EPC{}, fmt.Errorf("epc: SGTIN partition %d out of range", s.Partition)
	}
	p := sgtinPartition[s.Partition]
	if s.CompanyPrefix > maxBits(p.company) {
		return EPC{}, fmt.Errorf("epc: company prefix %d exceeds %d bits", s.CompanyPrefix, p.company)
	}
	if s.ItemReference > maxBits(p.item) {
		return EPC{}, fmt.Errorf("epc: item reference %d exceeds %d bits", s.ItemReference, p.item)
	}
	if s.Serial > maxBits(38) {
		return EPC{}, fmt.Errorf("epc: serial %d exceeds 38 bits", s.Serial)
	}
	// Assemble MSB-first into a 96-bit big integer held as 12 bytes.
	var bits [96]byte
	pos := 0
	put := func(v uint64, n uint) {
		for i := int(n) - 1; i >= 0; i-- {
			bits[pos] = byte(v >> uint(i) & 1)
			pos++
		}
	}
	put(uint64(SGTINHeader), 8)
	put(uint64(s.Filter), 3)
	put(uint64(s.Partition), 3)
	put(s.CompanyPrefix, p.company)
	put(s.ItemReference, p.item)
	put(s.Serial, 38)
	out := make([]byte, 12)
	for i, b := range bits {
		if b == 1 {
			out[i/8] |= 1 << (7 - i%8)
		}
	}
	return New(out), nil
}

// DecodeSGTIN unpacks an SGTIN-96 EPC. It returns an error when the EPC is
// not a 96-bit SGTIN.
func DecodeSGTIN(e EPC) (SGTIN, error) {
	if e.Bits() != 96 {
		return SGTIN{}, fmt.Errorf("epc: SGTIN-96 needs 96 bits, have %d", e.Bits())
	}
	if e.Bytes()[0] != SGTINHeader {
		return SGTIN{}, fmt.Errorf("epc: header %#02x is not SGTIN-96 (0x30)", e.Bytes()[0])
	}
	pos := 8
	get := func(n uint) uint64 {
		var v uint64
		for i := uint(0); i < n; i++ {
			v = v<<1 | uint64(e.Bit(pos))
			pos++
		}
		return v
	}
	var s SGTIN
	s.Filter = uint8(get(3))
	s.Partition = uint8(get(3))
	if int(s.Partition) >= len(sgtinPartition) {
		return SGTIN{}, fmt.Errorf("epc: SGTIN partition %d out of range", s.Partition)
	}
	p := sgtinPartition[s.Partition]
	s.CompanyPrefix = get(p.company)
	s.ItemReference = get(p.item)
	s.Serial = get(38)
	return s, nil
}

// String renders the identity as a GS1 EPC pure-identity URI,
// urn:epc:id:sgtin:Company.Item.Serial.
func (s SGTIN) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "urn:epc:id:sgtin:%d.%d.%d", s.CompanyPrefix, s.ItemReference, s.Serial)
	return b.String()
}

// SGTINPopulation builds n SGTIN-96 EPCs sharing one company prefix and
// item reference with sequential serials — the realistic population shape
// for a retail shelf: tags of the same product differ only in the serial,
// so the bitmask scheduler finds long shared prefixes.
func SGTINPopulation(company, item uint64, partition uint8, startSerial uint64, n int) ([]EPC, error) {
	out := make([]EPC, 0, n)
	for i := 0; i < n; i++ {
		e, err := SGTIN{
			Filter:        1, // point-of-sale item
			Partition:     partition,
			CompanyPrefix: company,
			ItemReference: item,
			Serial:        startSerial + uint64(i),
		}.Encode()
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}
