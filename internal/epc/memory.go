package epc

import "fmt"

// MemoryBank identifies one of the four Gen2 tag memory banks. The Select
// command's MemBank field names the bank its Mask is compared against; the
// paper fixes it to the EPC bank ("the MemBank is constantly set to the
// second bank").
type MemoryBank uint8

const (
	// BankReserved holds the kill and access passwords.
	BankReserved MemoryBank = 0
	// BankEPC holds StoredCRC (bits 0x00-0x0F), StoredPC (0x10-0x1F) and
	// the EPC code beginning at bit 0x20.
	BankEPC MemoryBank = 1
	// BankTID holds the tag's permalocked manufacturer identity.
	BankTID MemoryBank = 2
	// BankUser holds optional application data.
	BankUser MemoryBank = 3
)

// String implements fmt.Stringer for log and error messages.
func (b MemoryBank) String() string {
	switch b {
	case BankReserved:
		return "Reserved"
	case BankEPC:
		return "EPC"
	case BankTID:
		return "TID"
	case BankUser:
		return "User"
	default:
		return fmt.Sprintf("MemoryBank(%d)", uint8(b))
	}
}

// EPCWordOffset is the bit address within the EPC bank at which the EPC
// code itself begins (after StoredCRC and StoredPC).
const EPCWordOffset = 0x20

// Memory is the addressable memory of one Gen2 tag. Banks are bit strings
// addressed MSB-first, exactly as the Select command addresses them.
type Memory struct {
	banks [4]EPC
}

// NewMemory lays out tag memory around an EPC code: the EPC bank is
// StoredCRC‖StoredPC‖EPC, the TID bank carries a synthetic 96-bit identity
// derived from the EPC, and Reserved/User start zeroed.
func NewMemory(code EPC) *Memory {
	m := &Memory{}
	m.SetEPC(code)
	// Synthetic but stable TID: E2h class identifier then a scramble of the
	// EPC bytes, enough for tests that select on the TID bank.
	tid := make([]byte, 12)
	tid[0] = 0xE2
	src := code.Bytes()
	for i := 1; i < len(tid); i++ {
		var b byte
		if len(src) > 0 {
			b = src[(i*7)%len(src)]
		}
		tid[i] = b ^ byte(i*31)
	}
	m.banks[BankTID] = New(tid)
	m.banks[BankReserved] = New(make([]byte, 8)) // kill + access passwords
	return m
}

// SetEPC replaces the EPC code, recomputing StoredPC and StoredCRC. The PC
// word's length field (5 bits) counts 16-bit words of PC+EPC as per Gen2.
func (m *Memory) SetEPC(code EPC) {
	words := (code.Bits() + 15) / 16
	pc := uint16(words) << 11
	body := make([]byte, 2+2*words)
	body[0] = byte(pc >> 8)
	body[1] = byte(pc)
	copy(body[2:], code.Bytes())
	crc := CRC16(body)
	bank := make([]byte, 2+len(body))
	bank[0] = byte(crc >> 8)
	bank[1] = byte(crc)
	copy(bank[2:], body)
	m.banks[BankEPC] = New(bank)
}

// EPC returns the EPC code stored in the EPC bank (the bits after
// StoredCRC+StoredPC, trimmed to the PC word's length field).
func (m *Memory) EPC() EPC {
	bank := m.banks[BankEPC]
	if bank.Bits() < EPCWordOffset {
		return EPC{}
	}
	pcw, err := bank.Slice(16, 16)
	if err != nil {
		return EPC{}
	}
	words := int(pcw.Uint64() >> 11)
	n := 16 * words
	if EPCWordOffset+n > bank.Bits() {
		n = bank.Bits() - EPCWordOffset
	}
	code, err := bank.Slice(EPCWordOffset, n)
	if err != nil {
		return EPC{}
	}
	return code
}

// Bank returns the raw contents of a memory bank.
func (m *Memory) Bank(b MemoryBank) EPC {
	if b > BankUser {
		return EPC{}
	}
	return m.banks[b]
}

// SetBank replaces a bank's raw contents. Tests use it to craft User-bank
// select targets.
func (m *Memory) SetBank(b MemoryBank, v EPC) error {
	if b > BankUser {
		return fmt.Errorf("epc: invalid memory bank %d", b)
	}
	m.banks[b] = v
	return nil
}

// Match reports whether the bank's bits starting at pointer equal mask —
// the tag-side predicate of the Select command. Per Gen2, a mask window
// that runs past the end of the bank does not match.
func (m *Memory) Match(bank MemoryBank, pointer int, mask EPC) bool {
	if bank > BankUser {
		return false
	}
	return m.banks[bank].MatchBits(pointer, mask)
}

// ReadWords returns n 16-bit words starting at word address wordPtr of a
// bank — the semantics of the Gen2 Read access command. Reads past the end
// of the bank fail (tags answer with a memory-overrun error).
func (m *Memory) ReadWords(b MemoryBank, wordPtr, n int) ([]uint16, error) {
	if b > BankUser {
		return nil, fmt.Errorf("epc: invalid memory bank %d", b)
	}
	if wordPtr < 0 || n <= 0 {
		return nil, fmt.Errorf("epc: invalid read window [%d, %d words)", wordPtr, n)
	}
	bank := m.banks[b]
	if (wordPtr+n)*16 > bank.Bits() {
		return nil, fmt.Errorf("epc: read [%d,%d) words overruns %d-bit bank %s",
			wordPtr, wordPtr+n, bank.Bits(), b)
	}
	out := make([]uint16, n)
	for i := 0; i < n; i++ {
		w, err := bank.Slice((wordPtr+i)*16, 16)
		if err != nil {
			return nil, err
		}
		out[i] = uint16(w.Uint64())
	}
	return out, nil
}

// WriteWords writes 16-bit words starting at word address wordPtr of a
// bank — the Gen2 Write/BlockWrite semantics. The bank grows as needed for
// the User bank; the other banks must already cover the window. Writing
// into the EPC bank keeps the stored CRC stale, as on a real tag (it is
// recomputed by the tag only at power-up; SetEPC recomputes explicitly).
func (m *Memory) WriteWords(b MemoryBank, wordPtr int, words []uint16) error {
	if b > BankUser {
		return fmt.Errorf("epc: invalid memory bank %d", b)
	}
	if wordPtr < 0 || len(words) == 0 {
		return fmt.Errorf("epc: invalid write window [%d, %d words)", wordPtr, len(words))
	}
	bank := m.banks[b]
	needBits := (wordPtr + len(words)) * 16
	raw := bank.Bytes()
	if needBits > bank.Bits() {
		if b != BankUser {
			return fmt.Errorf("epc: write [%d,%d) words overruns %d-bit bank %s",
				wordPtr, wordPtr+len(words), bank.Bits(), b)
		}
		grown := make([]byte, (needBits+7)/8)
		copy(grown, raw)
		raw = grown
	}
	for i, w := range words {
		raw[(wordPtr+i)*2] = byte(w >> 8)
		raw[(wordPtr+i)*2+1] = byte(w)
	}
	m.banks[b] = New(raw)
	return nil
}
