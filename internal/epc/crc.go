package epc

// CRC algorithms mandated by the EPC Gen2 air protocol (Annex F of the
// EPCglobal Class-1 Generation-2 UHF RFID specification).
//
// CRC-16 protects the StoredPC+EPC words in EPC memory and every
// backscattered PC/EPC reply; CRC-5 protects the Query command.

// CRC-16/CCITT parameters used by Gen2: polynomial 0x1021, preset 0xFFFF,
// final complement, MSB-first.
const (
	crc16Poly   = 0x1021
	crc16Preset = 0xFFFF
)

var crc16Table = buildCRC16Table()

func buildCRC16Table() [256]uint16 {
	var t [256]uint16
	for i := 0; i < 256; i++ {
		c := uint16(i) << 8
		for b := 0; b < 8; b++ {
			if c&0x8000 != 0 {
				c = c<<1 ^ crc16Poly
			} else {
				c <<= 1
			}
		}
		t[i] = c
	}
	return t
}

// CRC16 computes the Gen2 CRC-16 over data.
func CRC16(data []byte) uint16 {
	crc := uint16(crc16Preset)
	for _, b := range data {
		crc = crc<<8 ^ crc16Table[byte(crc>>8)^b]
	}
	return ^crc
}

// CheckCRC16 verifies that data followed by the 16-bit checksum sum is a
// valid Gen2 CRC-16 codeword.
func CheckCRC16(data []byte, sum uint16) bool {
	return CRC16(data) == sum
}

// CRC5 computes the Gen2 CRC-5 (polynomial x^5+x^3+1 = 0b101001, preset
// 0b01001) over the low `bits` bits of v, MSB first. The Query command
// carries 17 payload bits protected by this checksum.
func CRC5(v uint32, bits int) uint8 {
	const poly = 0x09 // x^3 + 1 below the implicit x^5
	crc := uint8(0x09)
	for i := bits - 1; i >= 0; i-- {
		bit := uint8(v>>uint(i)) & 1
		top := crc >> 4 & 1
		crc = crc << 1 & 0x1F
		if bit^top == 1 {
			crc ^= poly
		}
	}
	return crc
}

// CheckCRC5 verifies a CRC-5 checksum over the low `bits` bits of v.
func CheckCRC5(v uint32, bits int, sum uint8) bool {
	return CRC5(v, bits) == sum
}
