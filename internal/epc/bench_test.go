package epc

import (
	"math/rand"
	"testing"
)

func BenchmarkCRC16(b *testing.B) {
	data := make([]byte, 14) // PC + EPC-96
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		CRC16(data)
	}
}

func BenchmarkMatchBits(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pop, _ := RandomPopulation(rng, 1, 96)
	code := pop[0]
	mask, _ := code.Slice(16, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !code.MatchBits(16, mask) {
			b.Fatal("must match")
		}
	}
}
