package epc

import (
	"testing"
	"testing/quick"
)

func TestCRC16KnownVector(t *testing.T) {
	// "123456789" is the canonical CRC check string. For the Gen2 CRC-16
	// (CCITT-FALSE preset with final complement, a.k.a. CRC-16/GENIBUS),
	// the expected value is 0xD64E.
	got := CRC16([]byte("123456789"))
	if got != 0xD64E {
		t.Fatalf("CRC16(123456789) = %#04x, want 0xd64e", got)
	}
}

func TestCRC16Empty(t *testing.T) {
	// Preset 0xFFFF complemented with no data is 0x0000.
	if got := CRC16(nil); got != 0x0000 {
		t.Fatalf("CRC16(nil) = %#04x, want 0", got)
	}
}

func TestCheckCRC16(t *testing.T) {
	data := []byte{0x30, 0x00, 0xDE, 0xAD, 0xBE, 0xEF}
	sum := CRC16(data)
	if !CheckCRC16(data, sum) {
		t.Fatal("valid codeword rejected")
	}
	if CheckCRC16(data, sum^1) {
		t.Fatal("corrupt checksum accepted")
	}
}

func TestCRC16DetectsSingleBitFlips(t *testing.T) {
	f := func(b []byte, idx uint) bool {
		if len(b) == 0 {
			return true
		}
		i := int(idx % uint(len(b)*8))
		sum := CRC16(b)
		mut := append([]byte(nil), b...)
		mut[i/8] ^= 1 << (7 - i%8)
		return CRC16(mut) != sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCRC5FiveBitRange(t *testing.T) {
	for v := uint32(0); v < 1<<17; v += 977 {
		if c := CRC5(v, 17); c > 0x1F {
			t.Fatalf("CRC5(%d) = %#x exceeds 5 bits", v, c)
		}
	}
}

func TestCheckCRC5(t *testing.T) {
	const payload = 0b1_00_01_10_0100_0_10_11 // arbitrary 17-bit Query body
	sum := CRC5(payload, 17)
	if !CheckCRC5(payload, 17, sum) {
		t.Fatal("valid CRC-5 codeword rejected")
	}
	if CheckCRC5(payload^0b100, 17, sum) {
		t.Fatal("corrupt payload accepted")
	}
}

func TestCRC5DetectsSingleBitFlips(t *testing.T) {
	f := func(v uint32, idx uint8) bool {
		v &= 1<<17 - 1
		i := uint(idx) % 17
		return CRC5(v, 17) != CRC5(v^1<<i, 17)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
