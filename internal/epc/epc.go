// Package epc models EPC Gen2 tag identities and tag memory.
//
// The package provides the Electronic Product Code (EPC) value type used
// throughout the simulator and the middleware, the four Gen2 memory banks
// (Reserved, EPC, TID, User), and the CRC algorithms mandated by the EPC
// Gen2 air protocol (CRC-16/CCITT for EPC memory and backscattered replies,
// CRC-5 for Query commands).
//
// An EPC is an immutable bit string. The paper's bitmask scheduling (§5)
// addresses EPCs at arbitrary bit offsets, so the package exposes exact
// bit-level accessors rather than only byte-level ones.
package epc

import (
	"encoding/hex"
	"errors"
	"fmt"
	"math/rand"
	"strings"
)

// StandardBits is the length in bits of the EPC-96 identifiers used in the
// paper's evaluation ("let L be the bit length of the EPC number (e.g., 96
// or 128 bits)").
const StandardBits = 96

// EPC is an Electronic Product Code: an immutable big-endian bit string.
// Bit 0 is the most significant bit of the first byte, matching the
// addressing convention of the Gen2 Select command.
type EPC struct {
	bits int
	data string // raw bytes, comparable; kept as string so EPC is a map key
}

// New builds an EPC from raw bytes, using every bit of data.
func New(data []byte) EPC {
	return EPC{bits: len(data) * 8, data: string(data)}
}

// NewBits builds an EPC of exactly bits length from data. Trailing bits of
// the final byte beyond the requested length are cleared so that equal EPCs
// compare equal.
func NewBits(data []byte, bits int) (EPC, error) {
	if bits < 0 {
		return EPC{}, fmt.Errorf("epc: negative bit length %d", bits)
	}
	need := (bits + 7) / 8
	if need > len(data) {
		return EPC{}, fmt.Errorf("epc: %d bits need %d bytes, have %d", bits, need, len(data))
	}
	b := make([]byte, need)
	copy(b, data[:need])
	if rem := bits % 8; rem != 0 && need > 0 {
		b[need-1] &= byte(0xFF << (8 - rem))
	}
	return EPC{bits: bits, data: string(b)}, nil
}

// Parse decodes a hexadecimal EPC string such as
// "30f4ab12cd0045e100000001". Whitespace and "0x" prefixes are ignored.
func Parse(s string) (EPC, error) {
	s = strings.TrimSpace(strings.TrimPrefix(strings.ToLower(s), "0x"))
	s = strings.ReplaceAll(s, " ", "")
	raw, err := hex.DecodeString(s)
	if err != nil {
		return EPC{}, fmt.Errorf("epc: parse %q: %w", s, err)
	}
	return New(raw), nil
}

// MustParse is Parse for test fixtures and examples; it panics on error.
func MustParse(s string) EPC {
	e, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return e
}

// Bits returns the EPC length in bits.
func (e EPC) Bits() int { return e.bits }

// Bytes returns a fresh copy of the EPC's raw bytes.
func (e EPC) Bytes() []byte { return []byte(e.data) }

// IsZero reports whether e is the zero EPC (no bits at all).
func (e EPC) IsZero() bool { return e.bits == 0 }

// String renders the EPC as lowercase hex.
func (e EPC) String() string { return hex.EncodeToString([]byte(e.data)) }

// Bit returns bit i (0 = MSB of the first byte). It panics if i is out of
// range, mirroring slice indexing.
func (e EPC) Bit(i int) byte {
	if i < 0 || i >= e.bits {
		panic(fmt.Sprintf("epc: bit index %d out of range [0,%d)", i, e.bits))
	}
	return (e.data[i/8] >> (7 - i%8)) & 1
}

// Slice extracts length bits starting at bit offset as a new EPC. It returns
// an error when the window exceeds the EPC, mirroring how a Gen2 tag treats
// an out-of-range mask (non-matching rather than panicking).
func (e EPC) Slice(offset, length int) (EPC, error) {
	if offset < 0 || length < 0 || offset+length > e.bits {
		return EPC{}, fmt.Errorf("epc: slice [%d,%d) out of %d bits", offset, offset+length, e.bits)
	}
	out := make([]byte, (length+7)/8)
	for i := 0; i < length; i++ {
		if e.Bit(offset+i) == 1 {
			out[i/8] |= 1 << (7 - i%8)
		}
	}
	ne, _ := NewBits(out, length)
	return ne, nil
}

// MatchBits reports whether the EPC's bits [offset, offset+len(mask bits))
// equal the given mask. A window that extends beyond the EPC never matches,
// which is the Gen2 tag behaviour for an overlong Select mask.
func (e EPC) MatchBits(offset int, mask EPC) bool {
	if offset < 0 || offset+mask.bits > e.bits {
		return false
	}
	for i := 0; i < mask.bits; i++ {
		if e.Bit(offset+i) != mask.Bit(i) {
			return false
		}
	}
	return true
}

// Uint64 interprets the first min(64, Bits()) bits as a big-endian integer.
// Convenient for compact test assertions on short synthetic EPCs.
func (e EPC) Uint64() uint64 {
	var v uint64
	n := e.bits
	if n > 64 {
		n = 64
	}
	for i := 0; i < n; i++ {
		v = v<<1 | uint64(e.Bit(i))
	}
	return v
}

// FromUint64 builds an EPC of the given bit length from the low `bits` bits
// of v (MSB first). Used by tests and the paper's 6-bit worked examples.
func FromUint64(v uint64, bits int) EPC {
	if bits < 0 || bits > 64 {
		panic(fmt.Sprintf("epc: FromUint64 bits %d out of range", bits))
	}
	out := make([]byte, (bits+7)/8)
	for i := 0; i < bits; i++ {
		if v>>(uint(bits-1-i))&1 == 1 {
			out[i/8] |= 1 << (7 - i%8)
		}
	}
	e, _ := NewBits(out, bits)
	return e
}

// ErrDuplicate is returned by population builders when uniqueness cannot be
// satisfied (e.g. more EPCs requested than the bit space holds).
var ErrDuplicate = errors.New("epc: cannot generate enough unique EPCs")

// RandomPopulation draws n unique uniformly random EPCs of the given bit
// length from rng. The evaluation deploys "tags with random EPCs" (§7.2);
// deterministic seeding keeps experiments reproducible.
func RandomPopulation(rng *rand.Rand, n, bits int) ([]EPC, error) {
	if bits <= 0 {
		return nil, fmt.Errorf("epc: population bit length %d must be positive", bits)
	}
	if bits < 63 && n > 1<<uint(bits) {
		return nil, fmt.Errorf("%w: %d EPCs from a %d-bit space", ErrDuplicate, n, bits)
	}
	seen := make(map[EPC]struct{}, n)
	out := make([]EPC, 0, n)
	buf := make([]byte, (bits+7)/8)
	for attempts := 0; len(out) < n; attempts++ {
		if attempts > 64*n+1024 {
			return nil, fmt.Errorf("%w: gave up after %d attempts", ErrDuplicate, attempts)
		}
		for i := range buf {
			buf[i] = byte(rng.Intn(256))
		}
		e, err := NewBits(buf, bits)
		if err != nil {
			return nil, err
		}
		if _, dup := seen[e]; dup {
			continue
		}
		seen[e] = struct{}{}
		out = append(out, e)
	}
	return out, nil
}

// SequentialPopulation builds n EPCs whose low 32 bits count upward from
// start, with the given fixed header bytes. Real deployments often carry
// near-sequential serials; several tests use this to stress the bitmask
// scheduler with highly clustered EPCs.
func SequentialPopulation(header []byte, start uint32, n, bits int) ([]EPC, error) {
	if bits < 32 {
		return nil, fmt.Errorf("epc: sequential population needs >=32 bits, got %d", bits)
	}
	out := make([]EPC, 0, n)
	nbytes := (bits + 7) / 8
	for i := 0; i < n; i++ {
		b := make([]byte, nbytes)
		copy(b, header)
		serial := start + uint32(i)
		b[nbytes-4] = byte(serial >> 24)
		b[nbytes-3] = byte(serial >> 16)
		b[nbytes-2] = byte(serial >> 8)
		b[nbytes-1] = byte(serial)
		e, err := NewBits(b, bits)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}
