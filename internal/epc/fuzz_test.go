package epc

import "testing"

// FuzzParse exercises EPC parsing and the bit accessors with arbitrary
// strings: no panics, and parsed EPCs must round-trip through String.
func FuzzParse(f *testing.F) {
	f.Add("30f4ab12cd0045e100000001")
	f.Add("0x30F4")
	f.Add("")
	f.Add("zz")
	f.Add("0")
	f.Fuzz(func(t *testing.T, s string) {
		e, err := Parse(s)
		if err != nil {
			return
		}
		back, err := Parse(e.String())
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v", e.String(), err)
		}
		if back != e {
			t.Fatalf("round trip: %v vs %v", back, e)
		}
		if e.Bits() > 0 {
			e.Bit(0)
			e.Bit(e.Bits() - 1)
			if s, err := e.Slice(0, e.Bits()); err != nil || s != e {
				t.Fatalf("identity slice: %v %v", s, err)
			}
		}
		NewMemory(e).EPC()
	})
}
