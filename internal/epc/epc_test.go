package epc

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewAndString(t *testing.T) {
	e := New([]byte{0x30, 0xF4, 0xAB})
	if e.Bits() != 24 {
		t.Fatalf("Bits() = %d, want 24", e.Bits())
	}
	if got := e.String(); got != "30f4ab" {
		t.Fatalf("String() = %q, want 30f4ab", got)
	}
}

func TestNewBitsTrimsTrailing(t *testing.T) {
	a, err := NewBits([]byte{0xFF, 0xFF}, 12)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBits([]byte{0xFF, 0xF0}, 12)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("EPCs with identical 12-bit prefixes must compare equal: %v vs %v", a, b)
	}
	if a.Bits() != 12 {
		t.Fatalf("Bits() = %d, want 12", a.Bits())
	}
}

func TestNewBitsErrors(t *testing.T) {
	if _, err := NewBits([]byte{0xAB}, 9); err == nil {
		t.Fatal("expected error for 9 bits from 1 byte")
	}
	if _, err := NewBits(nil, -1); err == nil {
		t.Fatal("expected error for negative bit count")
	}
}

func TestParse(t *testing.T) {
	e, err := Parse("0x30F4 AB12 CD00 45E1 0000 0001")
	if err != nil {
		t.Fatal(err)
	}
	if e.Bits() != 96 {
		t.Fatalf("Bits() = %d, want 96", e.Bits())
	}
	if e.String() != "30f4ab12cd0045e100000001" {
		t.Fatalf("round trip mismatch: %s", e)
	}
	if _, err := Parse("zz"); err == nil {
		t.Fatal("expected parse error for non-hex input")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse must panic on invalid input")
		}
	}()
	MustParse("not-hex")
}

func TestBitIndexing(t *testing.T) {
	e := New([]byte{0b1010_0001})
	want := []byte{1, 0, 1, 0, 0, 0, 0, 1}
	for i, w := range want {
		if got := e.Bit(i); got != w {
			t.Errorf("Bit(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestBitPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Bit must panic out of range")
		}
	}()
	New([]byte{0}).Bit(8)
}

func TestSlice(t *testing.T) {
	// 001110 010010 101100 as in the paper's Fig. 9 example tags.
	e := FromUint64(0b001110, 6)
	got, err := e.Slice(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Uint64() != 0b11 {
		t.Fatalf("Slice(2,2) = %b, want 11", got.Uint64())
	}
	if _, err := e.Slice(5, 3); err == nil {
		t.Fatal("expected out-of-range slice error")
	}
	if _, err := e.Slice(-1, 2); err == nil {
		t.Fatal("expected negative offset error")
	}
}

func TestMatchBitsPaperExample(t *testing.T) {
	// Fig. 9(a): bitmask S1(10₂, 4, 2) covers 001110₂ and 010010₂ and
	// collaterally covers 110110₂... wait, S1 there is (10₂, pointer=4?).
	// The paper's figure uses 1-indexed text; we verify the underlying
	// semantics: mask "10" at offset 4 of 001110 is bits[4:6] = "10".
	tags := map[uint64]bool{ // tag -> should match mask 10 at offset 4
		0b001110: true,
		0b010010: true,
		0b110110: true,
		0b101100: false,
	}
	mask := FromUint64(0b10, 2)
	for v, want := range tags {
		e := FromUint64(v, 6)
		if got := e.MatchBits(4, mask); got != want {
			t.Errorf("MatchBits(%06b, offset 4, mask 10) = %v, want %v", v, got, want)
		}
	}
}

func TestMatchBitsOverrun(t *testing.T) {
	e := FromUint64(0b1111, 4)
	if e.MatchBits(2, FromUint64(0b111, 3)) {
		t.Fatal("mask overrunning the EPC must not match")
	}
	if e.MatchBits(-1, FromUint64(0b1, 1)) {
		t.Fatal("negative offset must not match")
	}
	if !e.MatchBits(1, FromUint64(0b111, 3)) {
		t.Fatal("in-range suffix must match")
	}
}

func TestUint64RoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		v &= (1 << 48) - 1
		return FromUint64(v, 48).Uint64() == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSliceMatchesBitProperty(t *testing.T) {
	// Property: for any EPC, slicing [off, off+n) then matching it back at
	// off always succeeds.
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		buf := make([]byte, 12)
		r.Read(buf)
		e := New(buf)
		off := rng.Intn(90)
		n := 1 + rng.Intn(96-off)
		s, err := e.Slice(off, n)
		if err != nil {
			return false
		}
		return e.MatchBits(off, s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFromUint64Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromUint64 must panic for bits > 64")
		}
	}()
	FromUint64(1, 65)
}

func TestRandomPopulationUnique(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	pop, err := RandomPopulation(rng, 400, StandardBits)
	if err != nil {
		t.Fatal(err)
	}
	if len(pop) != 400 {
		t.Fatalf("len = %d, want 400", len(pop))
	}
	seen := map[EPC]struct{}{}
	for _, e := range pop {
		if e.Bits() != StandardBits {
			t.Fatalf("EPC bits = %d, want %d", e.Bits(), StandardBits)
		}
		if _, dup := seen[e]; dup {
			t.Fatalf("duplicate EPC %s", e)
		}
		seen[e] = struct{}{}
	}
}

func TestRandomPopulationSmallSpace(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pop, err := RandomPopulation(rng, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(pop) != 16 {
		t.Fatalf("want all 16 4-bit EPCs, got %d", len(pop))
	}
	if _, err := RandomPopulation(rng, 17, 4); err == nil {
		t.Fatal("17 unique EPCs cannot fit a 4-bit space")
	}
	if _, err := RandomPopulation(rng, 1, 0); err == nil {
		t.Fatal("zero bit length must error")
	}
}

func TestRandomPopulationDeterministic(t *testing.T) {
	a, _ := RandomPopulation(rand.New(rand.NewSource(9)), 10, 96)
	b, _ := RandomPopulation(rand.New(rand.NewSource(9)), 10, 96)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed must yield same population (index %d)", i)
		}
	}
}

func TestSequentialPopulation(t *testing.T) {
	hdr := []byte{0x30, 0x11, 0x22}
	pop, err := SequentialPopulation(hdr, 100, 5, 96)
	if err != nil {
		t.Fatal(err)
	}
	if len(pop) != 5 {
		t.Fatalf("len = %d, want 5", len(pop))
	}
	for i, e := range pop {
		b := e.Bytes()
		if b[0] != 0x30 || b[1] != 0x11 {
			t.Fatalf("header lost: %s", e)
		}
		serial := uint32(b[8])<<24 | uint32(b[9])<<16 | uint32(b[10])<<8 | uint32(b[11])
		if serial != 100+uint32(i) {
			t.Fatalf("serial[%d] = %d, want %d", i, serial, 100+uint32(i))
		}
	}
	if _, err := SequentialPopulation(nil, 0, 1, 16); err == nil {
		t.Fatal("sub-32-bit sequential population must error")
	}
}

func TestStringIsLowerHex(t *testing.T) {
	e := MustParse("ABCDEF")
	if e.String() != strings.ToLower("ABCDEF") {
		t.Fatalf("String() = %q", e.String())
	}
}
