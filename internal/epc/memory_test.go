package epc

import (
	"math/rand"
	"testing"
)

func TestMemoryEPCRoundTrip(t *testing.T) {
	code := MustParse("30f4ab12cd0045e100000001")
	m := NewMemory(code)
	if got := m.EPC(); got != code {
		t.Fatalf("EPC round trip: got %s, want %s", got, code)
	}
}

func TestMemoryEPCBankLayout(t *testing.T) {
	code := MustParse("30f4ab12cd0045e100000001")
	m := NewMemory(code)
	bank := m.Bank(BankEPC)
	// StoredCRC(16) + StoredPC(16) + EPC(96) = 128 bits.
	if bank.Bits() != 128 {
		t.Fatalf("EPC bank bits = %d, want 128", bank.Bits())
	}
	pcw, err := bank.Slice(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	if words := pcw.Uint64() >> 11; words != 6 {
		t.Fatalf("PC length field = %d words, want 6 for a 96-bit EPC", words)
	}
	// StoredCRC covers PC+EPC.
	raw := bank.Bytes()
	sum := uint16(raw[0])<<8 | uint16(raw[1])
	if !CheckCRC16(raw[2:], sum) {
		t.Fatal("StoredCRC does not validate PC+EPC")
	}
	// EPC code must appear at bit 0x20.
	got, err := bank.Slice(EPCWordOffset, 96)
	if err != nil {
		t.Fatal(err)
	}
	if got != code {
		t.Fatalf("EPC at 0x20 = %s, want %s", got, code)
	}
}

func TestMemorySetEPCReplaces(t *testing.T) {
	m := NewMemory(MustParse("000000000000000000000001"))
	next := MustParse("deadbeefdeadbeefdeadbeef")
	m.SetEPC(next)
	if m.EPC() != next {
		t.Fatalf("SetEPC: got %s, want %s", m.EPC(), next)
	}
}

func TestMemoryTIDStableAndDistinct(t *testing.T) {
	a := NewMemory(MustParse("30f4ab12cd0045e100000001"))
	b := NewMemory(MustParse("30f4ab12cd0045e100000001"))
	c := NewMemory(MustParse("30f4ab12cd0045e100000002"))
	if a.Bank(BankTID) != b.Bank(BankTID) {
		t.Fatal("TID must be a pure function of the EPC")
	}
	if a.Bank(BankTID) == c.Bank(BankTID) {
		t.Fatal("different EPCs should yield different TIDs")
	}
	if a.Bank(BankTID).Bytes()[0] != 0xE2 {
		t.Fatal("TID must start with the E2h class identifier")
	}
}

func TestMemoryMatchEPCBank(t *testing.T) {
	code := MustParse("30f4ab12cd0045e100000001")
	m := NewMemory(code)
	// Select pointing at the EPC code region: first byte of the EPC is
	// 0x30, at bank bit offset 0x20.
	mask := New([]byte{0x30})
	if !m.Match(BankEPC, EPCWordOffset, mask) {
		t.Fatal("mask 0x30 at 0x20 should match")
	}
	if m.Match(BankEPC, EPCWordOffset+4, mask) {
		t.Fatal("shifted mask should not match")
	}
	// Overrunning window never matches.
	long := New(make([]byte, 32))
	if m.Match(BankEPC, EPCWordOffset, long) {
		t.Fatal("overrunning mask must not match")
	}
}

func TestMemoryMatchInvalidBank(t *testing.T) {
	m := NewMemory(MustParse("01"))
	if m.Match(MemoryBank(7), 0, New([]byte{0})) {
		t.Fatal("invalid bank must not match")
	}
	if !m.Bank(MemoryBank(9)).IsZero() {
		t.Fatal("invalid bank read must return zero EPC")
	}
}

func TestMemorySetBank(t *testing.T) {
	m := NewMemory(MustParse("01"))
	user := MustParse("cafebabe")
	if err := m.SetBank(BankUser, user); err != nil {
		t.Fatal(err)
	}
	if !m.Match(BankUser, 0, New([]byte{0xCA, 0xFE})) {
		t.Fatal("user bank mask should match after SetBank")
	}
	if err := m.SetBank(MemoryBank(4), user); err == nil {
		t.Fatal("SetBank must reject invalid banks")
	}
}

func TestMemoryBankStrings(t *testing.T) {
	cases := map[MemoryBank]string{
		BankReserved:  "Reserved",
		BankEPC:       "EPC",
		BankTID:       "TID",
		BankUser:      "User",
		MemoryBank(9): "MemoryBank(9)",
	}
	for b, want := range cases {
		if got := b.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", b, got, want)
		}
	}
}

func TestMemoryMatchAgainstPopulation(t *testing.T) {
	// Property-style check: Memory.Match on the EPC bank agrees with
	// EPC.MatchBits shifted by the 0x20 header for random populations.
	rng := rand.New(rand.NewSource(3))
	pop, err := RandomPopulation(rng, 64, 96)
	if err != nil {
		t.Fatal(err)
	}
	for _, code := range pop {
		m := NewMemory(code)
		off := rng.Intn(90)
		n := 1 + rng.Intn(96-off)
		mask, err := code.Slice(off, n)
		if err != nil {
			t.Fatal(err)
		}
		if !m.Match(BankEPC, EPCWordOffset+off, mask) {
			t.Fatalf("self-derived mask must match (epc %s off %d len %d)", code, off, n)
		}
	}
}

func TestReadWords(t *testing.T) {
	m := NewMemory(MustParse("30f4ab12cd0045e100000001"))
	// EPC bank word 2..7 hold the EPC code.
	words, err := m.ReadWords(BankEPC, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	if words[0] != 0x30f4 || words[5] != 0x0001 {
		t.Fatalf("words = %04x", words)
	}
	if _, err := m.ReadWords(BankEPC, 7, 2); err == nil {
		t.Fatal("overrun read must error")
	}
	if _, err := m.ReadWords(MemoryBank(9), 0, 1); err == nil {
		t.Fatal("invalid bank must error")
	}
	if _, err := m.ReadWords(BankEPC, -1, 1); err == nil {
		t.Fatal("negative pointer must error")
	}
	if _, err := m.ReadWords(BankEPC, 0, 0); err == nil {
		t.Fatal("zero count must error")
	}
}

func TestWriteWordsUserBankGrows(t *testing.T) {
	m := NewMemory(MustParse("30f4ab12cd0045e100000001"))
	if err := m.WriteWords(BankUser, 3, []uint16{0xCAFE, 0xBABE}); err != nil {
		t.Fatal(err)
	}
	words, err := m.ReadWords(BankUser, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if words[0] != 0xCAFE || words[1] != 0xBABE {
		t.Fatalf("read back %04x", words)
	}
	// Other banks must not grow.
	if err := m.WriteWords(BankTID, 10, []uint16{1}); err == nil {
		t.Fatal("TID overrun write must error")
	}
	if err := m.WriteWords(MemoryBank(7), 0, []uint16{1}); err == nil {
		t.Fatal("invalid bank must error")
	}
	if err := m.WriteWords(BankUser, 0, nil); err == nil {
		t.Fatal("empty write must error")
	}
}

func TestWriteWordsEPCBankInPlace(t *testing.T) {
	m := NewMemory(MustParse("30f4ab12cd0045e100000001"))
	if err := m.WriteWords(BankEPC, 2, []uint16{0xDEAD}); err != nil {
		t.Fatal(err)
	}
	code := m.EPC()
	if code.Bytes()[0] != 0xDE || code.Bytes()[1] != 0xAD {
		t.Fatalf("EPC after write = %s", code)
	}
}
