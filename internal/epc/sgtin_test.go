package epc

import (
	"testing"
	"testing/quick"
)

func TestSGTINRoundTrip(t *testing.T) {
	in := SGTIN{
		Filter:        1,
		Partition:     5, // 24-bit company, 20-bit item
		CompanyPrefix: 0x0ABCDE,
		ItemReference: 0x54321,
		Serial:        123456789,
	}
	e, err := in.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if e.Bits() != 96 {
		t.Fatalf("bits = %d", e.Bits())
	}
	if e.Bytes()[0] != SGTINHeader {
		t.Fatalf("header = %#02x", e.Bytes()[0])
	}
	out, err := DecodeSGTIN(e)
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: %+v vs %+v", out, in)
	}
	if out.String() != "urn:epc:id:sgtin:703710.344865.123456789" {
		t.Fatalf("URI = %s", out.String())
	}
}

func TestSGTINAllPartitions(t *testing.T) {
	for part := uint8(0); part <= 6; part++ {
		p := sgtinPartition[part]
		in := SGTIN{
			Filter:        3,
			Partition:     part,
			CompanyPrefix: maxBits(p.company),
			ItemReference: maxBits(p.item),
			Serial:        maxBits(38),
		}
		e, err := in.Encode()
		if err != nil {
			t.Fatalf("partition %d: %v", part, err)
		}
		out, err := DecodeSGTIN(e)
		if err != nil {
			t.Fatalf("partition %d: %v", part, err)
		}
		if out != in {
			t.Fatalf("partition %d round trip: %+v vs %+v", part, out, in)
		}
	}
}

func TestSGTINEncodeErrors(t *testing.T) {
	cases := []SGTIN{
		{Filter: 8},
		{Partition: 7},
		{Partition: 0, CompanyPrefix: 1 << 41},
		{Partition: 6, ItemReference: 1 << 25},
		{Serial: 1 << 39},
	}
	for i, s := range cases {
		if _, err := s.Encode(); err == nil {
			t.Errorf("case %d must error: %+v", i, s)
		}
	}
}

func TestDecodeSGTINErrors(t *testing.T) {
	if _, err := DecodeSGTIN(MustParse("30f4")); err == nil {
		t.Fatal("short EPC must error")
	}
	if _, err := DecodeSGTIN(MustParse("e0f4ab12cd0045e100000001")); err == nil {
		t.Fatal("wrong header must error")
	}
	// Header right but partition 7 (invalid): craft bits 11-13 = 111.
	raw := make([]byte, 12)
	raw[0] = SGTINHeader
	raw[1] = 0b000_111_00 // filter 0, partition 7
	if _, err := DecodeSGTIN(New(raw)); err == nil {
		t.Fatal("invalid partition must error")
	}
}

func TestSGTINRoundTripProperty(t *testing.T) {
	f := func(filter, part uint8, company, item, serial uint64) bool {
		filter &= 7
		part %= 7
		p := sgtinPartition[part]
		in := SGTIN{
			Filter:        filter,
			Partition:     part,
			CompanyPrefix: company & maxBits(p.company),
			ItemReference: item & maxBits(p.item),
			Serial:        serial & maxBits(38),
		}
		e, err := in.Encode()
		if err != nil {
			return false
		}
		out, err := DecodeSGTIN(e)
		return err == nil && out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSGTINPopulation(t *testing.T) {
	pop, err := SGTINPopulation(703710, 344865, 5, 1000, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(pop) != 20 {
		t.Fatalf("len = %d", len(pop))
	}
	// Same product: the first 58 bits (header+filter+partition+company+
	// item) are identical across the population.
	prefix, err := pop[0].Slice(0, 58)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range pop {
		if !e.MatchBits(0, prefix) {
			t.Fatalf("tag %d does not share the product prefix", i)
		}
		s, err := DecodeSGTIN(e)
		if err != nil {
			t.Fatal(err)
		}
		if s.Serial != 1000+uint64(i) {
			t.Fatalf("serial[%d] = %d", i, s.Serial)
		}
	}
	// All distinct.
	seen := map[EPC]bool{}
	for _, e := range pop {
		if seen[e] {
			t.Fatal("duplicate EPC")
		}
		seen[e] = true
	}
	if _, err := SGTINPopulation(1<<41, 0, 0, 0, 1); err == nil {
		t.Fatal("oversize company prefix must error")
	}
}
