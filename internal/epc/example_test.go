package epc_test

import (
	"fmt"

	"tagwatch/internal/epc"
)

// Example shows EPC parsing, bit-level mask matching (the primitive behind
// Gen2 Select), and SGTIN-96 decoding.
func Example() {
	code := epc.MustParse("30f4ab12cd0045e100000001")

	// Bit-level windows are the Select command's currency.
	prefix, _ := code.Slice(0, 16)
	fmt.Printf("bits [0,16) = %s, matches self: %v\n", prefix, code.MatchBits(0, prefix))

	// Retail tags carry GS1 SGTIN-96 identities.
	item, _ := epc.SGTIN{
		Filter: 1, Partition: 5,
		CompanyPrefix: 703710, ItemReference: 344865, Serial: 42,
	}.Encode()
	decoded, _ := epc.DecodeSGTIN(item)
	fmt.Println(decoded)
	// Output:
	// bits [0,16) = 30f4, matches self: true
	// urn:epc:id:sgtin:703710.344865.42
}
