package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"tagwatch/internal/epc"
)

// FileConfig is the on-disk configuration of the middleware — the paper's
// §5 "configuration file" in which operators pin tags of significant
// concern, plus the tunables upper applications are allowed to adjust.
// All fields are optional; absent fields keep the paper defaults.
type FileConfig struct {
	// PinnedEPCs are hex EPCs always scheduled in Phase II.
	PinnedEPCs []string `json:"pinned_epcs"`
	// PhaseIIDwellMS is the selective-reading dwell in milliseconds
	// (paper default: 5000).
	PhaseIIDwellMS int `json:"phase2_dwell_ms"`
	// MobileCutoff is the mover fraction above which cycles fall back to
	// read-all (paper default: 0.2).
	MobileCutoff float64 `json:"mobile_cutoff"`
	// StickyMS is the target hysteresis window in milliseconds.
	StickyMS int `json:"sticky_ms"`
	// DepartAfterMS forgets tags unseen for this long.
	DepartAfterMS int `json:"depart_after_ms"`
	// NaiveSchedule switches to the EPC-per-target baseline schedule.
	NaiveSchedule bool `json:"naive_schedule"`
}

// LoadConfigFile reads a FileConfig from a JSON file and layers it over
// the defaults.
func LoadConfigFile(path string) (Config, error) {
	cfg := DefaultConfig()
	raw, err := os.ReadFile(path)
	if err != nil {
		return cfg, fmt.Errorf("core: read config: %w", err)
	}
	return applyFileConfig(cfg, raw)
}

// applyFileConfig parses raw JSON over base.
func applyFileConfig(base Config, raw []byte) (Config, error) {
	var fc FileConfig
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&fc); err != nil {
		return base, fmt.Errorf("core: parse config: %w", err)
	}
	for _, s := range fc.PinnedEPCs {
		code, err := epc.Parse(s)
		if err != nil {
			return base, fmt.Errorf("core: pinned EPC %q: %w", s, err)
		}
		base.Pinned = append(base.Pinned, code)
	}
	if fc.PhaseIIDwellMS > 0 {
		base.PhaseIIDwell = time.Duration(fc.PhaseIIDwellMS) * time.Millisecond
	}
	if fc.MobileCutoff > 0 {
		if fc.MobileCutoff > 1 {
			return base, fmt.Errorf("core: mobile_cutoff %v out of (0, 1]", fc.MobileCutoff)
		}
		base.MobileCutoff = fc.MobileCutoff
	}
	if fc.StickyMS > 0 {
		base.StickyFor = time.Duration(fc.StickyMS) * time.Millisecond
	}
	if fc.DepartAfterMS > 0 {
		base.DepartAfter = time.Duration(fc.DepartAfterMS) * time.Millisecond
	}
	if fc.NaiveSchedule {
		base.NaiveSchedule = true
	}
	return base, nil
}
