package core

import (
	"sort"
	"sync"
	"time"

	"tagwatch/internal/epc"
)

// History is the reading database the middleware maintains for upper
// applications: a bounded per-tag ring of recent readings plus lifetime
// counters (the "history database" of Fig. 5). It is safe for concurrent
// use: cycle loops write while serving layers read.
type History struct {
	mu    sync.RWMutex
	depth int
	tags  map[epc.EPC]*tagHistory
}

type tagHistory struct {
	ring     []Reading
	start    int
	count    int
	total    uint64
	lastSeen time.Duration
}

// NewHistory builds a history retaining up to depth readings per tag.
func NewHistory(depth int) *History {
	if depth <= 0 {
		depth = 256
	}
	return &History{depth: depth, tags: make(map[epc.EPC]*tagHistory)}
}

// Add records one reading.
func (h *History) Add(r Reading) {
	h.mu.Lock()
	defer h.mu.Unlock()
	th, ok := h.tags[r.EPC]
	if !ok {
		th = &tagHistory{ring: make([]Reading, h.depth)}
		h.tags[r.EPC] = th
	}
	idx := (th.start + th.count) % h.depth
	if th.count == h.depth {
		th.start = (th.start + 1) % h.depth
		idx = (th.start + th.count - 1) % h.depth
	} else {
		th.count++
	}
	th.ring[idx] = r
	th.total++
	if r.Time > th.lastSeen {
		th.lastSeen = r.Time
	}
}

// Recent returns up to n most-recent readings of a tag, oldest first.
func (h *History) Recent(code epc.EPC, n int) []Reading {
	h.mu.RLock()
	defer h.mu.RUnlock()
	th, ok := h.tags[code]
	if !ok || n <= 0 {
		return nil
	}
	if n > th.count {
		n = th.count
	}
	out := make([]Reading, n)
	for i := 0; i < n; i++ {
		out[i] = th.ring[(th.start+th.count-n+i)%h.depth]
	}
	return out
}

// Total returns the lifetime reading count of a tag.
func (h *History) Total(code epc.EPC) uint64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if th, ok := h.tags[code]; ok {
		return th.total
	}
	return 0
}

// LastSeen returns the timestamp of a tag's most recent reading and
// whether the tag is known.
func (h *History) LastSeen(code epc.EPC) (time.Duration, bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	th, ok := h.tags[code]
	if !ok {
		return 0, false
	}
	return th.lastSeen, true
}

// Tags returns all known tags, sorted for determinism.
func (h *History) Tags() []epc.EPC {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make([]epc.EPC, 0, len(h.tags))
	for code := range h.tags {
		out = append(out, code)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// IRR estimates a tag's individual reading rate in Hz over its retained
// history window.
func (h *History) IRR(code epc.EPC) float64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	th, ok := h.tags[code]
	if !ok || th.count < 2 {
		return 0
	}
	first := th.ring[th.start]
	last := th.ring[(th.start+th.count-1)%h.depth]
	span := last.Time - first.Time
	if span <= 0 {
		return 0
	}
	return float64(th.count-1) / span.Seconds()
}

// Prune drops tags unseen since the cutoff, returning how many were
// removed.
func (h *History) Prune(cutoff time.Duration) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	var n int
	for code, th := range h.tags {
		if th.lastSeen < cutoff {
			delete(h.tags, code)
			n++
		}
	}
	return n
}
