package core

import (
	"fmt"
	"sync"
	"time"

	"tagwatch/internal/epc"
	"tagwatch/internal/guard"
	"tagwatch/internal/motion"
	"tagwatch/internal/schedule"
)

// Config tunes the Tagwatch middleware.
type Config struct {
	// Motion configures the Phase I GMM detector.
	Motion motion.Config
	// Schedule configures Phase II bitmask selection.
	Schedule schedule.Config
	// PhaseIIDwell is the length of the selective-reading phase; the paper
	// fixes 5 s ("the upper applications can adjust it").
	PhaseIIDwell time.Duration
	// MobileCutoff is the mobile-tag fraction above which the cycle falls
	// back to plain read-all (§3 Scope: "> 20%").
	MobileCutoff float64
	// Pinned lists user-configured tags that are always scheduled in
	// Phase II regardless of motion state (§5's configuration file).
	Pinned []epc.EPC
	// StickyFor keeps a tag in the target set for this long after its last
	// restless reading. One Phase I reading per cycle is a thin sample of
	// a mover's state; hysteresis turns a per-cycle detection probability
	// of p into a miss probability of (1−p)^k over k covered cycles, at
	// the cost of a false positive lingering a couple of cycles.
	StickyFor time.Duration
	// DepartAfter forgets a tag (models and history) when it has not been
	// read for this long; zero disables forgetting.
	DepartAfter time.Duration
	// HistoryDepth bounds the per-tag reading history retained.
	HistoryDepth int
	// NaiveSchedule replaces the greedy set-cover with the naive plan
	// (each target's full EPC as its own bitmask) — the baseline
	// "rate-adaptive" arm the paper compares against throughout §7.
	NaiveSchedule bool
}

// DefaultConfig returns the paper's system parameters.
func DefaultConfig() Config {
	return Config{
		Motion:       motion.DefaultConfig(),
		Schedule:     schedule.DefaultConfig(),
		PhaseIIDwell: 5 * time.Second,
		MobileCutoff: 0.2,
		StickyFor:    12 * time.Second,
		DepartAfter:  30 * time.Second,
		HistoryDepth: 256,
	}
}

// CycleReport summarises one two-phase reading cycle.
type CycleReport struct {
	// PhaseIReads and PhaseIIReads are the readings delivered by each
	// phase (both also reach subscribers and the history).
	PhaseIReads  []Reading
	PhaseIIReads []Reading
	// Present is the set of distinct tags seen in Phase I.
	Present []epc.EPC
	// Mobile is the set assessed as moving this cycle.
	Mobile []epc.EPC
	// Targets is Mobile plus the present pinned tags.
	Targets []epc.EPC
	// Plan is the bitmask plan executed in Phase II (zero when the cycle
	// fell back to read-all).
	Plan schedule.Plan
	// FellBack reports the read-all fallback was taken (too many movers or
	// nothing to schedule).
	FellBack bool
	// ScheduleCost is the wall-clock time spent between the end of Phase I
	// and the start of Phase II on assessment bookkeeping and bitmask
	// search — the Fig. 17 metric.
	ScheduleCost time.Duration
	// PhaseIDuration and PhaseIIDuration are in device-virtual time.
	PhaseIDuration  time.Duration
	PhaseIIDuration time.Duration
	// Err is non-nil when the transport failed during the cycle: the
	// cycle's readings (possibly partial, possibly none) must not be
	// interpreted as an empty RF field. A Phase I failure skips Phase II
	// entirely — there is no point selectively reading over a dead link.
	Err error
}

// Healthy reports whether the cycle completed without transport failure.
func (r *CycleReport) Healthy() bool { return r.Err == nil }

// Metrics accumulates operational counters across the middleware's
// lifetime — what an operator dashboards.
type Metrics struct {
	Cycles    int
	Fallbacks int
	// CycleErrors counts cycles that ended with a transport error —
	// the degraded-operation signal an operator alerts on.
	CycleErrors      int
	PhaseIReadings   uint64
	PhaseIIReadings  uint64
	TargetsScheduled uint64
	MasksSelected    uint64
	// ScheduleCostTotal is the accumulated wall-clock planning time; the
	// mean (divided by Cycles) is the Fig. 17 quantity.
	ScheduleCostTotal time.Duration
	// ListenerPanics counts subscriber callbacks that panicked during
	// delivery. The panic is contained — one broken subscriber loses its
	// own readings, not everyone else's and not the cycle loop.
	ListenerPanics uint64
}

// Tagwatch is the middleware controller.
type Tagwatch struct {
	cfg Config
	dev Device
	det *motion.Detector

	// metricsMu guards the lifetime counters: serving layers snapshot them
	// while the cycle loop accumulates.
	metricsMu sync.Mutex
	metrics   Metrics

	history   *History
	listeners []func(Reading)

	pinned map[epc.EPC]bool
	// pinsDirty marks the pinned set as changed since the last
	// JournalRecords drain.
	pinsDirty bool
	// lastRestless is the hysteresis memory: device time of each tag's
	// most recent restless reading.
	lastRestless map[epc.EPC]time.Duration

	// table caches the schedule index; rebuilt when the population
	// changes.
	table    *schedule.IndexTable
	tableKey string
}

// New builds a Tagwatch instance over a device.
func New(cfg Config, dev Device) *Tagwatch {
	if cfg.PhaseIIDwell <= 0 {
		cfg.PhaseIIDwell = 5 * time.Second
	}
	if cfg.MobileCutoff <= 0 {
		cfg.MobileCutoff = 0.2
	}
	if cfg.HistoryDepth <= 0 {
		cfg.HistoryDepth = 256
	}
	tw := &Tagwatch{
		cfg:          cfg,
		dev:          dev,
		det:          motion.NewPhaseMoG(cfg.Motion),
		history:      NewHistory(cfg.HistoryDepth),
		pinned:       make(map[epc.EPC]bool, len(cfg.Pinned)),
		lastRestless: make(map[epc.EPC]time.Duration),
	}
	for _, p := range cfg.Pinned {
		tw.pinned[p] = true
	}
	return tw
}

// Subscribe registers a listener that receives every reading from both
// phases — the upper-application delivery path of Fig. 5.
func (tw *Tagwatch) Subscribe(fn func(Reading)) {
	tw.listeners = append(tw.listeners, fn)
}

// History exposes the reading history database.
func (tw *Tagwatch) History() *History { return tw.history }

// Metrics returns a snapshot of the lifetime counters. Safe to call while
// a cycle runs.
func (tw *Tagwatch) Metrics() Metrics {
	tw.metricsMu.Lock()
	defer tw.metricsMu.Unlock()
	return tw.metrics
}

// Detector exposes the Phase I motion detector (experiments probe it).
func (tw *Tagwatch) Detector() *motion.Detector { return tw.det }

// Pin adds a tag to the always-schedule set at runtime.
func (tw *Tagwatch) Pin(code epc.EPC) {
	if !tw.pinned[code] {
		tw.pinned[code] = true
		tw.pinsDirty = true
	}
}

// Unpin removes a pinned tag.
func (tw *Tagwatch) Unpin(code epc.EPC) {
	if tw.pinned[code] {
		delete(tw.pinned, code)
		tw.pinsDirty = true
	}
}

// deliver records a reading in history and fans it out. Each listener
// runs contained: a panicking subscriber is counted and skipped for this
// reading; the remaining listeners and the cycle loop are unaffected.
func (tw *Tagwatch) deliver(r Reading) {
	tw.history.Add(r)
	for _, fn := range tw.listeners {
		if perr := guard.Call(func() { fn(r) }); perr != nil {
			tw.metricsMu.Lock()
			tw.metrics.ListenerPanics++
			tw.metricsMu.Unlock()
		}
	}
}

// assess feeds one reading through the motion detector and reports the
// verdict.
func (tw *Tagwatch) assess(r Reading) motion.Result {
	return tw.det.Observe(r.EPC, r.Antenna, r.Channel, r.PhaseRad, r.Time)
}

// RunCycle executes one complete Phase I + Phase II cycle and returns its
// report.
func (tw *Tagwatch) RunCycle() CycleReport {
	var rep CycleReport

	// ---- Phase I: read everything once, assess motion. ----
	p1Start := tw.dev.Now()
	p1, p1Err := tw.dev.ReadAll()
	rep.PhaseIReads = p1
	rep.PhaseIDuration = tw.dev.Now() - p1Start

	planStart := time.Now() // wall clock: the Fig. 17 schedule cost
	moving := make(map[epc.EPC]bool)
	present := make(map[epc.EPC]bool)
	now := tw.dev.Now()
	for _, r := range rep.PhaseIReads {
		tw.deliver(r)
		present[r.EPC] = true
		// Restless = fresh motion evidence OR mode churn: the latter is
		// what keeps periodic movers (turntables, circular tracks) visible
		// once their phase range has been fully absorbed into modes.
		if tw.assess(r).Restless() {
			moving[r.EPC] = true
			tw.lastRestless[r.EPC] = r.Time
		}
	}
	for code := range present {
		rep.Present = append(rep.Present, code)
		if moving[code] {
			rep.Mobile = append(rep.Mobile, code)
		}
		sticky := false
		if last, ok := tw.lastRestless[code]; ok && tw.cfg.StickyFor > 0 && now-last <= tw.cfg.StickyFor {
			sticky = true
		}
		if moving[code] || sticky || tw.pinned[code] {
			rep.Targets = append(rep.Targets, code)
		}
	}

	// ---- Degrade: a failed Phase I skips Phase II entirely. ----
	// The partial readings above were still delivered and assessed (they
	// are real observations), but scheduling a selective dwell over a
	// dead link would just spin; surface the error and let the caller's
	// backoff take over.
	if p1Err != nil {
		rep.Err = fmt.Errorf("phase I: %w", p1Err)
		rep.ScheduleCost = time.Since(planStart)
		tw.finishCycle(&rep)
		return rep
	}

	// ---- Decide: schedule or fall back. ----
	fallback := len(rep.Targets) == 0 ||
		float64(len(rep.Targets)) > tw.cfg.MobileCutoff*float64(len(rep.Present))
	var plan schedule.Plan
	if !fallback {
		tw.ensureTable(rep.Present)
		if tw.table == nil {
			fallback = true
		} else if tw.cfg.NaiveSchedule {
			plan = tw.table.NaivePlan(rep.Targets)
		} else {
			p, err := tw.table.Select(rep.Targets)
			if err != nil {
				fallback = true
			} else {
				plan = p
			}
		}
	}
	rep.Plan = plan
	rep.FellBack = fallback
	rep.ScheduleCost = time.Since(planStart)

	// ---- Phase II: selective reading (or read-all fallback). ----
	p2Start := tw.dev.Now()
	var p2 []Reading
	var p2Err error
	if fallback {
		if sd, ok := tw.dev.(*SimDevice); ok {
			p2 = sd.ReadAllFor(tw.cfg.PhaseIIDwell)
		} else {
			// Generic devices: repeated full passes until the dwell is
			// consumed in device time. A dead transport returns nothing and
			// never advances the clock — bail rather than spin.
			deadline := tw.dev.Now() + tw.cfg.PhaseIIDwell
			for tw.dev.Now() < deadline {
				before := tw.dev.Now()
				batch, err := tw.dev.ReadAll()
				p2 = append(p2, batch...)
				if err != nil {
					p2Err = err
					break
				}
				if len(batch) == 0 && tw.dev.Now() == before {
					break
				}
			}
		}
	} else {
		p2, p2Err = tw.dev.ReadSelective(plan.Bitmasks(), tw.cfg.PhaseIIDwell)
	}
	if p2Err != nil {
		rep.Err = fmt.Errorf("phase II: %w", p2Err)
	}
	rep.PhaseIIDuration = tw.dev.Now() - p2Start
	rep.PhaseIIReads = p2
	restless2 := make(map[epc.EPC]int)
	lastAt := make(map[epc.EPC]time.Duration)
	for _, r := range p2 {
		tw.deliver(r)
		// Phase II readings also feed the immobility models — this is how
		// a newly learned multipath mode stabilises within one cycle (§4.3
		// "When do we learn Gaussian models?") — and refresh the
		// hysteresis, so a mover being selectively read stays targeted
		// without depending on its single Phase I sample each cycle. A
		// single restless reading in a long flood is noise; demand two.
		if tw.assess(r).Restless() {
			restless2[r.EPC]++
			lastAt[r.EPC] = r.Time
		}
	}
	for code, n := range restless2 {
		if n >= 2 {
			tw.lastRestless[code] = lastAt[code]
		}
	}

	tw.finishCycle(&rep)
	return rep
}

// finishCycle accumulates metrics and prunes departed tags — shared by
// the healthy path and the degraded early return.
func (tw *Tagwatch) finishCycle(rep *CycleReport) {
	tw.metricsMu.Lock()
	tw.metrics.Cycles++
	if rep.FellBack {
		tw.metrics.Fallbacks++
	}
	if rep.Err != nil {
		tw.metrics.CycleErrors++
	}
	tw.metrics.PhaseIReadings += uint64(len(rep.PhaseIReads))
	tw.metrics.PhaseIIReadings += uint64(len(rep.PhaseIIReads))
	tw.metrics.TargetsScheduled += uint64(len(rep.Targets))
	tw.metrics.MasksSelected += uint64(len(rep.Plan.Masks))
	tw.metrics.ScheduleCostTotal += rep.ScheduleCost
	tw.metricsMu.Unlock()

	// Housekeeping: forget departed tags. Skipped while the transport is
	// failing — a dead link is not evidence of departure, and pruning on
	// it would erase learned immobility models the reconnect still needs.
	if tw.cfg.DepartAfter > 0 && rep.Err == nil {
		cutoff := tw.dev.Now() - tw.cfg.DepartAfter
		tw.det.Prune(cutoff)
		tw.history.Prune(cutoff)
		for code, last := range tw.lastRestless {
			if last < cutoff {
				delete(tw.lastRestless, code)
			}
		}
	}
}

// ensureTable rebuilds the schedule index when the present population
// changed — the incremental-update step of §5.3's preprocessing.
func (tw *Tagwatch) ensureTable(population []epc.EPC) {
	key := populationKey(population)
	if tw.table != nil && key == tw.tableKey {
		return
	}
	t, err := schedule.NewIndexTable(tw.cfg.Schedule, population)
	if err != nil {
		tw.table = nil
		tw.tableKey = ""
		return
	}
	tw.table = t
	tw.tableKey = key
}

// populationKey builds an order-insensitive fingerprint of the population.
func populationKey(pop []epc.EPC) string {
	// XOR of per-EPC FNV hashes: order-insensitive, collision-unlikely for
	// the population sizes at hand.
	var acc [8]byte
	for _, code := range pop {
		var h uint64 = 1469598103934665603
		for _, b := range []byte(code.String()) {
			h ^= uint64(b)
			h *= 1099511628211
		}
		for i := 0; i < 8; i++ {
			acc[i] ^= byte(h >> (8 * i))
		}
	}
	return fmt.Sprintf("%d:%x", len(pop), acc)
}
