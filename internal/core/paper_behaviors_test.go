package core

// The paper's §4.3 "Discussions" answers, encoded as behaviours.

import (
	"math/rand"
	"testing"
	"time"

	"tagwatch/internal/epc"
	"tagwatch/internal/reader"
	"tagwatch/internal/rf"
	"tagwatch/internal/scene"
)

// "Why do we model immobility?" — when a tag moves from one place to
// another and parks, the outdated models decay and the new position is
// learned; the tag is targeted during the transition and released after.
func TestStateTransitionTargetsThenReleases(t *testing.T) {
	rng := newRigRand(1)
	scn := scene.New(rf.NewChannel(rf.DefaultParams(), rng), rng)
	scn.AddAntenna(rf.Pt(0, 0, 2))
	// The tag parks at A for 20 s, relocates over 2 s, parks at B.
	mover := epc.MustParse("30f4ab12cd0045e100000077")
	scn.AddTag(mover, scene.Waypoints{
		T: []time.Duration{0, 20 * time.Second, 22 * time.Second},
		P: []rf.Point{rf.Pt(0.5, 0.5, 0), rf.Pt(0.5, 0.5, 0), rf.Pt(2.5, 1.5, 0)},
	})
	codes, err := epc.RandomPopulation(rng, 15, 96)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range codes {
		scn.AddTag(c, scene.Stationary{P: rf.Pt(0.4+float64(i%5)*0.3, 1.0+float64(i/5)*0.3, 0)})
	}
	rcfg := reader.DefaultConfig()
	rcfg.HopEvery = 0
	cfg := DefaultConfig()
	cfg.PhaseIIDwell = 2 * time.Second
	cfg.StickyFor = 5 * time.Second
	dev := NewSimDevice(reader.New(rcfg, scn))
	tw := New(cfg, dev)

	var targetedDuringMove, targetedLongAfter bool
	for i := 0; i < 24; i++ {
		rep := tw.RunCycle()
		now := dev.Now()
		targeted := inSet(rep.Targets, mover)
		switch {
		case now > 20*time.Second && now < 28*time.Second:
			targetedDuringMove = targetedDuringMove || targeted
		case now > 42*time.Second:
			targetedLongAfter = targetedLongAfter || (targeted && !rep.FellBack)
		}
	}
	if !targetedDuringMove {
		t.Fatal("the relocation must be targeted")
	}
	if targetedLongAfter {
		t.Fatal("after parking at B, the tag must be released (new immobility learned)")
	}
}

// "How to deal with reading exceptions?" — a tag that leaves briefly and
// returns keeps its models (no cold start); one that leaves for good is
// forgotten.
func TestBriefAbsenceKeepsModels(t *testing.T) {
	rng := newRigRand(2)
	scn := scene.New(rf.NewChannel(rf.DefaultParams(), rng), rng)
	scn.AddAntenna(rf.Pt(0, 0, 2))
	// Out of range between t=15 s and t=23 s (briefly blocked), same spot
	// before and after.
	flicker := epc.MustParse("30f4ab12cd0045e100000088")
	scn.AddTag(flicker, scene.Waypoints{
		T: []time.Duration{0, 15 * time.Second, 15*time.Second + 1, 23 * time.Second, 23*time.Second + 1},
		P: []rf.Point{
			rf.Pt(1.0, 0.5, 0), rf.Pt(1.0, 0.5, 0),
			rf.Pt(500, 0, 0), rf.Pt(500, 0, 0), // far out of range
			rf.Pt(1.0, 0.5, 0),
		},
	})
	codes, err := epc.RandomPopulation(rng, 10, 96)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range codes {
		scn.AddTag(c, scene.Stationary{P: rf.Pt(0.4+float64(i%5)*0.3, 1.2+float64(i/5)*0.3, 0)})
	}
	rcfg := reader.DefaultConfig()
	rcfg.HopEvery = 0
	cfg := DefaultConfig()
	cfg.PhaseIIDwell = 2 * time.Second
	cfg.StickyFor = 4 * time.Second
	cfg.DepartAfter = 30 * time.Second // longer than the absence
	dev := NewSimDevice(reader.New(rcfg, scn))
	tw := New(cfg, dev)

	for dev.Now() < 26*time.Second {
		tw.RunCycle()
	}
	// The models survived the absence: the tag is immediately recognised
	// (its stack exists and an on-mode reading scores low).
	st := tw.Detector().Stack(flicker, 1, 0)
	if st == nil {
		t.Fatal("models must survive a brief absence")
	}
	// And the waypoint trick of §4.3's "extreme case" note: the tag was
	// re-read in Phase I after returning (history advanced past the gap).
	last, ok := tw.History().LastSeen(flicker)
	if !ok || last < 23*time.Second {
		t.Fatalf("returning tag not re-read: last seen %v", last)
	}
}

// "The extreme case... we can add its EPC to the configuration file" — a
// pinned tag is scheduled even when motion assessment never flags it.
func TestPinnedExtremeCaseIsAlwaysScheduled(t *testing.T) {
	// Covered in detail by TestPinnedTagAlwaysScheduled; here we assert
	// the config-file path end to end with a stationary pin.
	tw, _, _, static := paperRig(t, 70, 12, 1, 0)
	tw.Pin(static[0])
	var scheduledWhileParked bool
	for i := 0; i < 6; i++ {
		rep := tw.RunCycle()
		if rep.FellBack {
			continue
		}
		if inSet(rep.Targets, static[0]) && !inSet(rep.Mobile, static[0]) {
			scheduledWhileParked = true
		}
	}
	if !scheduledWhileParked {
		t.Fatal("a pinned stationary tag must be scheduled without being 'mobile'")
	}
}

// newRigRand is a tiny helper for the §4.3 behaviour rigs.
func newRigRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
