package core

import (
	"bytes"
	"errors"
	"fmt"

	"tagwatch/internal/statestore"
)

// Checkpointer ties a Tagwatch to a durable statestore.Store: restore on
// boot, journal the incremental changes after each cycle, write a full
// snapshot periodically and at shutdown.
//
// It is not safe for concurrent use — call it from the cycle loop's
// goroutine, the same discipline RunCycle demands.
type Checkpointer struct {
	tw    *Tagwatch
	store *statestore.Store
	// cyclesSinceSnap counts AfterCycle calls since the last snapshot,
	// driving the every-N policy.
	cyclesSinceSnap int
	// SnapshotEvery writes a full snapshot after this many cycles; 0
	// journals forever and snapshots only on Snapshot() calls (shutdown).
	SnapshotEvery int
}

// NewCheckpointer wires a middleware to an opened store. Call Restore
// before the first cycle.
func NewCheckpointer(tw *Tagwatch, store *statestore.Store) *Checkpointer {
	return &Checkpointer{tw: tw, store: store}
}

// Restore replays the store's recovered state into the middleware: the
// newest valid snapshot (an envelope or a legacy motion image), then
// every journal record on top. It must run before the first cycle.
func (c *Checkpointer) Restore() error {
	rec := c.store.Recovery()
	if rec.HasSnapshot {
		if err := c.tw.RestoreState(bytes.NewReader(rec.Snapshot)); err != nil {
			return fmt.Errorf("core: restore snapshot (gen %d): %w", rec.SnapshotGen, err)
		}
	}
	for i, data := range rec.Records {
		if err := c.tw.ApplyRecord(data); err != nil {
			return fmt.Errorf("core: replay journal record %d/%d: %w", i+1, len(rec.Records), err)
		}
	}
	// Replayed state is already durable; don't feed it back into the
	// journal.
	c.tw.discardChanges()
	return nil
}

// AfterCycle persists everything the finished cycle changed: learned
// mode updates, pin set changes, and forgets go to the journal; when the
// snapshot policy fires (or the store demands a re-anchor after a
// mid-chain recovery) a full snapshot is written instead. On return with
// nil, every change the cycle made is on stable storage.
func (c *Checkpointer) AfterCycle() error {
	c.cyclesSinceSnap++
	if c.SnapshotEvery > 0 && c.cyclesSinceSnap >= c.SnapshotEvery {
		return c.Snapshot()
	}
	recs, err := c.tw.JournalRecords()
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		return nil
	}
	if err := c.store.AppendBatch(recs); err != nil {
		if errors.Is(err, statestore.ErrSnapshotNeeded) {
			// The store recovered through a torn mid-chain journal and
			// refuses appends until re-anchored. The drained changes are
			// still in live state, so the full snapshot loses nothing.
			return c.Snapshot()
		}
		return err
	}
	return nil
}

// Snapshot writes the full state envelope as a new snapshot generation,
// resetting the journal and the every-N counter.
func (c *Checkpointer) Snapshot() error {
	var buf bytes.Buffer
	if err := c.tw.SaveState(&buf); err != nil {
		return err
	}
	if err := c.store.WriteSnapshot(buf.Bytes()); err != nil {
		return err
	}
	// Changes drained into records that never got appended — or still
	// sitting dirty — are all covered by the snapshot just written.
	c.tw.discardChanges()
	c.cyclesSinceSnap = 0
	return nil
}
