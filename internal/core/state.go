package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"tagwatch/internal/epc"
	"tagwatch/internal/motion"
)

// State persistence for the middleware. Two formats coexist:
//
//   - The envelope (this file): a versioned JSON document bundling the
//     motion detector's learned models with the pinned set and the
//     lifetime metrics. SaveState writes it; RestoreState reads it and
//     also accepts the legacy v1 format (a bare motion.Snapshot, what
//     SaveState wrote before the envelope existed).
//
//   - Journal records (Record): small JSON documents describing one
//     incremental change each, appended to a statestore journal between
//     snapshots. Every record is absolute (a full per-link stack image,
//     the full pin list, a forget tombstone), so replay is last-wins
//     and tolerant of duplicated delivery.
const (
	// stateVersion is the current envelope version. Version 1 is the
	// pre-envelope format: a bare motion snapshot.
	stateVersion = 2
)

// stateEnvelope is the on-disk SaveState document.
type stateEnvelope struct {
	Version int             `json:"version"`
	Motion  json.RawMessage `json:"motion"`
	Pinned  []string        `json:"pinned,omitempty"`
	Metrics Metrics         `json:"metrics"`
}

// Record is one incremental journal entry. Exactly one payload field is
// set, selected by Type:
//
//	"link"   — Link holds a full immobility-stack image for one
//	           (tag, antenna, channel); replay replaces that link.
//	"pins"   — Pins holds the complete pinned set; replay replaces it.
//	"forget" — EPC names a departed tag; replay drops all its state.
type Record struct {
	Type string            `json:"type"`
	Link *motion.LinkState `json:"link,omitempty"`
	Pins []string          `json:"pins,omitempty"`
	EPC  string            `json:"epc,omitempty"`
}

// SaveState persists the middleware's durable state — learned immobility
// models, the pinned set, and lifetime metrics — as a versioned envelope.
func (tw *Tagwatch) SaveState(w io.Writer) error {
	var mbuf bytes.Buffer
	if err := tw.det.Save(&mbuf); err != nil {
		return err
	}
	env := stateEnvelope{
		Version: stateVersion,
		Motion:  json.RawMessage(bytes.TrimSpace(mbuf.Bytes())),
		Pinned:  tw.pinnedList(),
		Metrics: tw.Metrics(),
	}
	return json.NewEncoder(w).Encode(env)
}

// pinnedList returns the pinned set as sorted EPC strings, nil when
// empty.
func (tw *Tagwatch) pinnedList() []string {
	if len(tw.pinned) == 0 {
		return nil
	}
	pins := make([]string, 0, len(tw.pinned))
	for code := range tw.pinned {
		pins = append(pins, code.String())
	}
	sort.Strings(pins)
	return pins
}

// RestoreState loads state written by SaveState: the current envelope or
// the legacy bare motion snapshot. Validation is all-or-nothing — a
// corrupt image leaves the middleware untouched.
func (tw *Tagwatch) RestoreState(r io.Reader) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("core: read state: %w", err)
	}
	var env stateEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return fmt.Errorf("core: decode state: %w", err)
	}
	switch env.Version {
	case 1:
		// Legacy: the whole document IS the motion snapshot.
		return tw.det.Load(bytes.NewReader(data))
	case stateVersion:
	default:
		return fmt.Errorf("core: state version %d, want %d", env.Version, stateVersion)
	}

	// Validate everything before mutating anything.
	pinned, err := parsePins(env.Pinned)
	if err != nil {
		return err
	}
	if err := tw.det.Load(bytes.NewReader(env.Motion)); err != nil {
		return err
	}
	tw.pinned = pinned
	tw.pinsDirty = false
	tw.metricsMu.Lock()
	tw.metrics = env.Metrics
	tw.metricsMu.Unlock()
	return nil
}

// LoadState restores state written by SaveState.
//
// Deprecated: kept as an alias for callers of the pre-envelope API; use
// RestoreState.
func (tw *Tagwatch) LoadState(r io.Reader) error { return tw.RestoreState(r) }

func parsePins(pins []string) (map[epc.EPC]bool, error) {
	out := make(map[epc.EPC]bool, len(pins))
	for _, p := range pins {
		code, err := epc.Parse(p)
		if err != nil {
			return nil, fmt.Errorf("core: pinned EPC %q: %w", p, err)
		}
		out[code] = true
	}
	return out, nil
}

// JournalRecords drains every state change since the previous drain as
// marshalled journal records, ready for statestore.AppendBatch. Order
// within the batch matters and is already correct: forget tombstones
// first (so a forgotten-then-reobserved tag loses its stale links before
// the fresh one is reinstated), then link images, then the pin set.
// An empty slice means nothing changed.
//
// The drain is destructive: callers own getting the records to stable
// storage. If the append fails, write a full snapshot instead — the
// drained changes are still in live state, just no longer marked dirty.
func (tw *Tagwatch) JournalRecords() ([][]byte, error) {
	links, forgotten := tw.det.DrainChanges()
	var recs [][]byte
	add := func(r Record) error {
		b, err := json.Marshal(r)
		if err != nil {
			return fmt.Errorf("core: marshal journal record: %w", err)
		}
		recs = append(recs, b)
		return nil
	}
	for _, tag := range forgotten {
		if err := add(Record{Type: "forget", EPC: tag}); err != nil {
			return nil, err
		}
	}
	for i := range links {
		if err := add(Record{Type: "link", Link: &links[i]}); err != nil {
			return nil, err
		}
	}
	if tw.pinsDirty {
		pins := tw.pinnedList()
		if pins == nil {
			pins = []string{} // distinguish "empty set" from "field absent"
		}
		if err := add(Record{Type: "pins", Pins: pins}); err != nil {
			return nil, err
		}
		tw.pinsDirty = false
	}
	return recs, nil
}

// ApplyRecord replays one journal record produced by JournalRecords.
// A record that fails validation is rejected without mutating anything.
func (tw *Tagwatch) ApplyRecord(data []byte) error {
	var rec Record
	if err := json.Unmarshal(data, &rec); err != nil {
		return fmt.Errorf("core: decode journal record: %w", err)
	}
	switch rec.Type {
	case "link":
		if rec.Link == nil {
			return fmt.Errorf("core: link record without link payload")
		}
		return tw.det.RestoreLink(*rec.Link)
	case "pins":
		pinned, err := parsePins(rec.Pins)
		if err != nil {
			return err
		}
		tw.pinned = pinned
		return nil
	case "forget":
		code, err := epc.Parse(rec.EPC)
		if err != nil {
			return fmt.Errorf("core: forget record EPC %q: %w", rec.EPC, err)
		}
		tw.det.Forget(code)
		return nil
	default:
		return fmt.Errorf("core: unknown journal record type %q", rec.Type)
	}
}

// discardChanges clears the dirty tracking after a replay: restored
// state is already durable and must not be re-journaled.
func (tw *Tagwatch) discardChanges() {
	tw.det.DrainChanges()
	tw.pinsDirty = false
}
