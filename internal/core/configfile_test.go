package core

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"tagwatch/internal/epc"
)

func writeConfig(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "tagwatch.json")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadConfigFileFull(t *testing.T) {
	path := writeConfig(t, `{
		"pinned_epcs": ["30f4ab12cd0045e100000001", "30F4AB12CD0045E100000002"],
		"phase2_dwell_ms": 2000,
		"mobile_cutoff": 0.3,
		"sticky_ms": 7000,
		"depart_after_ms": 60000,
		"naive_schedule": true
	}`)
	cfg, err := LoadConfigFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Pinned) != 2 {
		t.Fatalf("pinned = %d", len(cfg.Pinned))
	}
	if cfg.Pinned[1] != epc.MustParse("30f4ab12cd0045e100000002") {
		t.Fatalf("pinned[1] = %s", cfg.Pinned[1])
	}
	if cfg.PhaseIIDwell != 2*time.Second {
		t.Fatalf("dwell = %v", cfg.PhaseIIDwell)
	}
	if cfg.MobileCutoff != 0.3 {
		t.Fatalf("cutoff = %v", cfg.MobileCutoff)
	}
	if cfg.StickyFor != 7*time.Second {
		t.Fatalf("sticky = %v", cfg.StickyFor)
	}
	if cfg.DepartAfter != time.Minute {
		t.Fatalf("depart = %v", cfg.DepartAfter)
	}
	if !cfg.NaiveSchedule {
		t.Fatal("naive flag lost")
	}
}

func TestLoadConfigFilePartialKeepsDefaults(t *testing.T) {
	path := writeConfig(t, `{"pinned_epcs": ["01ff"]}`)
	cfg, err := LoadConfigFile(path)
	if err != nil {
		t.Fatal(err)
	}
	def := DefaultConfig()
	if cfg.PhaseIIDwell != def.PhaseIIDwell || cfg.MobileCutoff != def.MobileCutoff {
		t.Fatalf("defaults lost: %+v", cfg)
	}
	if len(cfg.Pinned) != 1 {
		t.Fatal("pin lost")
	}
}

func TestLoadConfigFileErrors(t *testing.T) {
	if _, err := LoadConfigFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file must error")
	}
	cases := map[string]string{
		"bad json":      `{not json`,
		"bad epc":       `{"pinned_epcs": ["zz"]}`,
		"bad cutoff":    `{"mobile_cutoff": 1.5}`,
		"unknown field": `{"phase_two_dwell": 5}`,
	}
	for name, content := range cases {
		path := writeConfig(t, content)
		if _, err := LoadConfigFile(path); err == nil {
			t.Errorf("%s must error", name)
		}
	}
}

func TestConfigFileDrivesPinning(t *testing.T) {
	// End to end: a config file pins a stationary tag, and the cycle
	// schedules it.
	tw, _, _, static := paperRig(t, 30, 20, 1, 0)
	path := writeConfig(t, `{"pinned_epcs": ["`+static[3].String()+`"], "phase2_dwell_ms": 2000, "sticky_ms": 5000}`)
	cfg, err := LoadConfigFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild the middleware with the loaded config over the same device.
	tw2 := New(cfg, tw.dev)
	var rep CycleReport
	for i := 0; i < 5; i++ {
		rep = tw2.RunCycle()
	}
	if rep.FellBack {
		t.Skip("fallback cycle")
	}
	if !inSet(rep.Targets, static[3]) {
		t.Fatalf("file-pinned tag missing from targets")
	}
}
