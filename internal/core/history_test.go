package core

import (
	"testing"
	"time"

	"tagwatch/internal/epc"
)

var (
	htagA = epc.MustParse("30f4ab12cd0045e100000001")
	htagB = epc.MustParse("30f4ab12cd0045e100000002")
)

func r(code epc.EPC, at time.Duration) Reading {
	return Reading{EPC: code, Time: at, PhaseRad: 1, RSSdBm: -60}
}

func TestHistoryAddAndRecent(t *testing.T) {
	h := NewHistory(4)
	for i := 0; i < 3; i++ {
		h.Add(r(htagA, time.Duration(i)*time.Second))
	}
	recent := h.Recent(htagA, 10)
	if len(recent) != 3 {
		t.Fatalf("recent = %d, want 3", len(recent))
	}
	for i := 1; i < len(recent); i++ {
		if recent[i].Time < recent[i-1].Time {
			t.Fatal("recent must be oldest-first")
		}
	}
	if h.Recent(htagB, 5) != nil {
		t.Fatal("unknown tag must return nil")
	}
	if h.Recent(htagA, 0) != nil {
		t.Fatal("n=0 must return nil")
	}
}

func TestHistoryRingWraps(t *testing.T) {
	h := NewHistory(4)
	for i := 0; i < 10; i++ {
		h.Add(r(htagA, time.Duration(i)*time.Second))
	}
	recent := h.Recent(htagA, 10)
	if len(recent) != 4 {
		t.Fatalf("depth-4 ring holds %d", len(recent))
	}
	if recent[0].Time != 6*time.Second || recent[3].Time != 9*time.Second {
		t.Fatalf("ring window wrong: %v .. %v", recent[0].Time, recent[3].Time)
	}
	if h.Total(htagA) != 10 {
		t.Fatalf("total = %d, want 10", h.Total(htagA))
	}
}

func TestHistoryLastSeenAndTags(t *testing.T) {
	h := NewHistory(8)
	h.Add(r(htagB, 2*time.Second))
	h.Add(r(htagA, 5*time.Second))
	if ts, ok := h.LastSeen(htagA); !ok || ts != 5*time.Second {
		t.Fatalf("LastSeen = %v %v", ts, ok)
	}
	if _, ok := h.LastSeen(epc.MustParse("ff")); ok {
		t.Fatal("unknown tag must report !ok")
	}
	tags := h.Tags()
	if len(tags) != 2 || tags[0] != htagA {
		t.Fatalf("Tags() = %v", tags)
	}
	if h.Total(epc.MustParse("ff")) != 0 {
		t.Fatal("unknown total must be 0")
	}
}

func TestHistoryIRR(t *testing.T) {
	h := NewHistory(16)
	// 11 readings over 1 s → 10 intervals → 10 Hz.
	for i := 0; i <= 10; i++ {
		h.Add(r(htagA, time.Duration(i)*100*time.Millisecond))
	}
	if irr := h.IRR(htagA); irr < 9.9 || irr > 10.1 {
		t.Fatalf("IRR = %v, want 10", irr)
	}
	if h.IRR(htagB) != 0 {
		t.Fatal("unknown tag IRR must be 0")
	}
	h.Add(r(htagB, time.Second))
	if h.IRR(htagB) != 0 {
		t.Fatal("single reading IRR must be 0")
	}
}

func TestHistoryPrune(t *testing.T) {
	h := NewHistory(8)
	h.Add(r(htagA, time.Second))
	h.Add(r(htagB, 10*time.Second))
	if n := h.Prune(5 * time.Second); n != 1 {
		t.Fatalf("pruned %d, want 1", n)
	}
	if _, ok := h.LastSeen(htagA); ok {
		t.Fatal("pruned tag must be gone")
	}
	if _, ok := h.LastSeen(htagB); !ok {
		t.Fatal("fresh tag must remain")
	}
}

func TestHistoryDefaultDepth(t *testing.T) {
	h := NewHistory(0)
	if h.depth != 256 {
		t.Fatalf("default depth = %d", h.depth)
	}
}
