package core

import (
	"bytes"
	"context"
	"math/rand"
	"testing"
	"time"

	"tagwatch/internal/epc"
	"tagwatch/internal/reader"
	"tagwatch/internal/rf"
	"tagwatch/internal/scene"
)

// paperRig builds the paper's one-antenna testbed: nStat stationary tags on
// a grid, nMob tags on a spinning turntable, all in range.
func paperRig(t *testing.T, seed int64, nStat, nMob int, hop time.Duration) (*Tagwatch, *SimDevice, []epc.EPC, []epc.EPC) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	p := rf.DefaultParams()
	scn := scene.New(rf.NewChannel(p, rng), rng)
	scn.AddAntenna(rf.Pt(0, 0, 2))
	codes, err := epc.RandomPopulation(rng, nStat+nMob, 96)
	if err != nil {
		t.Fatal(err)
	}
	movers := codes[:nMob]
	static := codes[nMob:]
	for i, c := range movers {
		scn.AddTag(c, scene.Circle{
			Center:     rf.Pt(1.5, 1.5, 0),
			Radius:     0.2,
			Speed:      0.7,
			StartAngle: float64(i),
		})
	}
	for i, c := range static {
		scn.AddTag(c, scene.Stationary{P: rf.Pt(0.4+float64(i%8)*0.3, 0.4+float64(i/8)*0.3, 0)})
	}
	rcfg := reader.DefaultConfig()
	rcfg.HopEvery = hop
	eng := reader.New(rcfg, scn)
	dev := NewSimDevice(eng)
	cfg := DefaultConfig()
	cfg.PhaseIIDwell = 2 * time.Second
	cfg.StickyFor = 5 * time.Second // scale hysteresis with the short dwell
	tw := New(cfg, dev)
	return tw, dev, movers, static
}

func inSet(set []epc.EPC, code epc.EPC) bool {
	for _, c := range set {
		if c == code {
			return true
		}
	}
	return false
}

func TestFirstCycleColdStartFallsBack(t *testing.T) {
	tw, _, _, _ := paperRig(t, 1, 20, 1, 0)
	rep := tw.RunCycle()
	if !rep.FellBack {
		t.Fatal("cold start must fall back to read-all (everything looks mobile)")
	}
	if len(rep.PhaseIIReads) == 0 {
		t.Fatal("fallback must still read in Phase II")
	}
}

func TestCycleIdentifiesMovers(t *testing.T) {
	tw, _, movers, static := paperRig(t, 2, 30, 2, 0)
	var rep CycleReport
	for i := 0; i < 5; i++ { // cold-start sticky targets decay over ~4 cycles
		rep = tw.RunCycle()
	}
	for _, m := range movers {
		if !inSet(rep.Targets, m) {
			t.Fatalf("mover %s not targeted in warm cycle (targets %v)", m, rep.Targets)
		}
	}
	// False positives bounded: at most a handful of the 30 stationary tags.
	var fp int
	for _, s := range static {
		if inSet(rep.Targets, s) {
			fp++
		}
	}
	if fp > 4 {
		t.Fatalf("%d of %d stationary tags mis-targeted", fp, len(static))
	}
	if rep.FellBack {
		t.Fatal("warm cycle with 2/32 movers must schedule, not fall back")
	}
}

func TestPhaseIIReadsMostlyTargets(t *testing.T) {
	tw, _, movers, _ := paperRig(t, 3, 30, 2, 0)
	var rep CycleReport
	for i := 0; i < 5; i++ {
		rep = tw.RunCycle()
	}
	if rep.FellBack {
		t.Skip("unlucky seed fell back; covered elsewhere")
	}
	var target, other int
	for _, r := range rep.PhaseIIReads {
		if inSet(rep.Targets, r.EPC) {
			target++
		} else {
			other++
		}
	}
	if target == 0 {
		t.Fatal("no target reads in Phase II")
	}
	// Collateral reads are allowed (cost-optimal masks may drag some in)
	// but targets must dominate.
	if other > target {
		t.Fatalf("collateral reads (%d) dominate target reads (%d)", other, target)
	}
	// Movers specifically got read a lot: an IRR far above 1/cycle.
	for _, m := range movers {
		var n int
		for _, r := range rep.PhaseIIReads {
			if r.EPC == m {
				n++
			}
		}
		if n < 10 {
			t.Fatalf("mover %s read only %d times in a 2 s Phase II", m, n)
		}
	}
}

func TestIRRGainOverReadAll(t *testing.T) {
	// The headline result: with ~6% movers, Tagwatch multiplies mover IRR
	// versus reading all (paper: 3.2× median at 5%).
	tw, dev, movers, _ := paperRig(t, 4, 30, 2, 0)
	for i := 0; i < 2; i++ {
		tw.RunCycle() // warm up
	}
	start := dev.Now()
	moverReads := 0
	for i := 0; i < 3; i++ {
		rep := tw.RunCycle()
		for _, r := range append(rep.PhaseIReads, rep.PhaseIIReads...) {
			if inSet(movers, r.EPC) {
				moverReads++
			}
		}
	}
	twIRR := float64(moverReads) / (dev.Now() - start).Seconds() / float64(len(movers))

	// Baseline: identical rig, plain read-all for the same virtual span.
	_, devB, moversB, _ := paperRig(t, 4, 30, 2, 0)
	span := dev.Now() - start
	base := devB.ReadAllFor(span)
	baseReads := 0
	for _, r := range base {
		if inSet(moversB, r.EPC) {
			baseReads++
		}
	}
	baseIRR := float64(baseReads) / span.Seconds() / float64(len(moversB))

	if baseIRR <= 0 {
		t.Fatal("baseline read nothing")
	}
	gain := twIRR / baseIRR
	if gain < 1.5 {
		t.Fatalf("IRR gain = %.2f× (tagwatch %.1f Hz vs read-all %.1f Hz), want ≥ 1.5×", gain, twIRR, baseIRR)
	}
}

func TestFallbackWhenTooManyMovers(t *testing.T) {
	tw, _, _, _ := paperRig(t, 5, 10, 10, 0) // 50% movers
	var rep CycleReport
	for i := 0; i < 3; i++ {
		rep = tw.RunCycle()
	}
	if !rep.FellBack {
		t.Fatal("50% movers must trip the read-all fallback (§3 Scope)")
	}
}

func TestPinnedTagAlwaysScheduled(t *testing.T) {
	tw, _, _, static := paperRig(t, 6, 20, 1, 0)
	pinned := static[7]
	tw.Pin(pinned)
	var rep CycleReport
	for i := 0; i < 4; i++ {
		rep = tw.RunCycle()
	}
	if rep.FellBack {
		t.Skip("fallback cycle; pinning is moot")
	}
	if !inSet(rep.Targets, pinned) {
		t.Fatalf("pinned stationary tag missing from targets %v", rep.Targets)
	}
	var n int
	for _, r := range rep.PhaseIIReads {
		if r.EPC == pinned {
			n++
		}
	}
	if n == 0 {
		t.Fatal("pinned tag not read in Phase II")
	}
	tw.Unpin(pinned)
	rep = tw.RunCycle()
	if !rep.FellBack && inSet(rep.Targets, pinned) {
		t.Fatal("unpinned stationary tag must drop out of the targets")
	}
}

func TestSubscribeSeesEverything(t *testing.T) {
	tw, _, _, _ := paperRig(t, 7, 10, 1, 0)
	var n int
	tw.Subscribe(func(Reading) { n++ })
	rep := tw.RunCycle()
	want := len(rep.PhaseIReads) + len(rep.PhaseIIReads)
	if n != want {
		t.Fatalf("subscriber saw %d readings, want %d", n, want)
	}
	if tw.History().Total(rep.PhaseIReads[0].EPC) == 0 {
		t.Fatal("history must record readings")
	}
}

func TestScheduleCostBounded(t *testing.T) {
	// Fig. 17: the assessment+selection gap is milliseconds. Allow
	// generous slack for shared machines, but catch algorithmic
	// regressions (e.g. candidate explosion).
	tw, _, _, _ := paperRig(t, 8, 38, 2, 0)
	var rep CycleReport
	for i := 0; i < 4; i++ {
		rep = tw.RunCycle()
	}
	if rep.ScheduleCost > 100*time.Millisecond {
		t.Fatalf("schedule cost %v — candidate search blew up", rep.ScheduleCost)
	}
}

func TestDepartedTagForgotten(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	scn := scene.New(rf.NewChannel(rf.DefaultParams(), rng), rng)
	scn.AddAntenna(rf.Pt(0, 0, 2))
	stay := epc.MustParse("30f4ab12cd0045e100000001")
	leave := epc.MustParse("30f4ab12cd0045e100000002")
	scn.AddTag(stay, scene.Stationary{P: rf.Pt(1, 1, 0)})
	// Departs out of range after 3 s.
	scn.AddTag(leave, scene.Line{
		Start:  rf.Pt(1.5, 1, 0),
		Dir:    rf.Pt(1, 0, 0),
		Speed:  100,
		Depart: 3 * time.Second,
		Arrive: 13 * time.Second,
	})
	eng := reader.New(reader.DefaultConfig(), scn)
	dev := NewSimDevice(eng)
	cfg := DefaultConfig()
	cfg.PhaseIIDwell = time.Second
	cfg.DepartAfter = 4 * time.Second
	tw := New(cfg, dev)
	for i := 0; i < 12; i++ {
		tw.RunCycle()
	}
	if _, ok := tw.History().LastSeen(leave); ok {
		t.Fatal("departed tag must be pruned from history")
	}
	if _, ok := tw.History().LastSeen(stay); !ok {
		t.Fatal("present tag must remain in history")
	}
	if tw.Detector().Stack(leave, 1, 0) != nil {
		t.Fatal("departed tag's immobility models must be freed")
	}
}

func TestHoppingWarmupConverges(t *testing.T) {
	// With frequency hopping the per-channel stacks start cold on every
	// new channel; the fallback floods them and the system converges to
	// selective reading within a bounded number of cycles. A reduced
	// 4-channel plan keeps the warm-up inside a test-sized budget (with
	// the full 16-channel plan, convergence takes proportionally longer —
	// every channel must be flooded at least once).
	rng := rand.New(rand.NewSource(10))
	p := rf.DefaultParams()
	p.Plan = rf.FrequencyPlan{BaseHz: 920.625e6, StepHz: 0.25e6, NumChan: 4}
	scn := scene.New(rf.NewChannel(p, rng), rng)
	scn.AddAntenna(rf.Pt(0, 0, 2))
	codes, err := epc.RandomPopulation(rng, 26, 96)
	if err != nil {
		t.Fatal(err)
	}
	mover := codes[0]
	scn.AddTag(mover, scene.Circle{Center: rf.Pt(1.5, 1.5, 0), Radius: 0.2, Speed: 0.7})
	for i, c := range codes[1:] {
		scn.AddTag(c, scene.Stationary{P: rf.Pt(0.4+float64(i%8)*0.3, 0.4+float64(i/8)*0.3, 0)})
	}
	rcfg := reader.DefaultConfig()
	rcfg.HopEvery = 2 * time.Second
	eng := reader.New(rcfg, scn)
	cfg := DefaultConfig()
	cfg.PhaseIIDwell = 2 * time.Second
	cfg.StickyFor = 5 * time.Second
	tw := New(cfg, NewSimDevice(eng))

	converged := false
	var rep CycleReport
	for i := 0; i < 30; i++ {
		rep = tw.RunCycle()
		if !rep.FellBack && inSet(rep.Targets, mover) && len(rep.Targets) <= 6 {
			converged = true
			break
		}
	}
	if !converged {
		t.Fatalf("never converged under hopping: last cycle fellback=%v targets=%d", rep.FellBack, len(rep.Targets))
	}
}

func TestCycleReportAccounting(t *testing.T) {
	tw, dev, _, _ := paperRig(t, 11, 15, 1, 0)
	before := dev.Now()
	rep := tw.RunCycle()
	if rep.PhaseIDuration <= 0 || rep.PhaseIIDuration <= 0 {
		t.Fatalf("durations: %v / %v", rep.PhaseIDuration, rep.PhaseIIDuration)
	}
	if dev.Now()-before < rep.PhaseIDuration+rep.PhaseIIDuration {
		t.Fatal("clock must advance by at least both phases")
	}
	if len(rep.Present) != 16 {
		t.Fatalf("present = %d, want 16", len(rep.Present))
	}
}

func TestNewDefaultsFilled(t *testing.T) {
	tw := New(Config{}, nil)
	if tw.cfg.PhaseIIDwell != 5*time.Second || tw.cfg.MobileCutoff != 0.2 || tw.cfg.HistoryDepth != 256 {
		t.Fatalf("defaults: %+v", tw.cfg)
	}
}

func TestRunLoopDeliversReportsUntilCancelled(t *testing.T) {
	tw, dev, _, _ := paperRig(t, 40, 10, 1, 0)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out := tw.Run(ctx, 500*time.Millisecond)
	var reports []CycleReport
	for rep := range out {
		reports = append(reports, rep)
		if len(reports) == 4 {
			cancel()
		}
		if len(reports) > 10 {
			t.Fatal("run loop ignored cancellation")
		}
	}
	if len(reports) < 4 {
		t.Fatalf("reports = %d", len(reports))
	}
	// The pause advanced the virtual clock between cycles: total time must
	// exceed 4 cycles + 3 pauses.
	if dev.Now() < 4*2*time.Second+3*500*time.Millisecond {
		t.Fatalf("clock = %v — pauses not applied", dev.Now())
	}
}

func TestSaveLoadStateAcrossRestart(t *testing.T) {
	// Warm a middleware instance, snapshot it, and resume in a fresh
	// instance over the same scene: the resumed instance must not fall
	// back (no cold start).
	tw, dev, movers, _ := paperRig(t, 50, 20, 1, 0)
	for i := 0; i < 5; i++ {
		tw.RunCycle()
	}
	var buf bytes.Buffer
	if err := tw.SaveState(&buf); err != nil {
		t.Fatal(err)
	}

	cfg := DefaultConfig()
	cfg.PhaseIIDwell = 2 * time.Second
	cfg.StickyFor = 5 * time.Second
	resumed := New(cfg, dev)
	if err := resumed.LoadState(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	// No cold start: the very first resumed cycle must NOT flag the
	// stationary majority as mobile (a cold start flags everything).
	rep := resumed.RunCycle()
	if len(rep.Mobile) > 4 {
		t.Fatalf("resumed first cycle flagged %d tags mobile — cold start", len(rep.Mobile))
	}
	// And within two cycles the mover is targeted again.
	found := inSet(rep.Targets, movers[0])
	for i := 0; i < 2 && !found; i++ {
		rep = resumed.RunCycle()
		found = inSet(rep.Targets, movers[0])
	}
	if !found {
		t.Fatal("resumed middleware must still detect the mover")
	}
}

func TestMetricsAccumulate(t *testing.T) {
	tw, _, _, _ := paperRig(t, 60, 10, 1, 0)
	for i := 0; i < 3; i++ {
		tw.RunCycle()
	}
	m := tw.Metrics()
	if m.Cycles != 3 {
		t.Fatalf("cycles = %d", m.Cycles)
	}
	if m.Fallbacks == 0 {
		t.Fatal("cold-start cycles must count as fallbacks")
	}
	if m.PhaseIReadings == 0 || m.PhaseIIReadings == 0 {
		t.Fatalf("readings: %d/%d", m.PhaseIReadings, m.PhaseIIReadings)
	}
	if m.ScheduleCostTotal <= 0 {
		t.Fatal("schedule cost must accumulate")
	}
}

func TestPanickingListenerContained(t *testing.T) {
	tw, _, _, _ := paperRig(t, 7, 10, 1, 0)
	var survivor int
	tw.Subscribe(func(Reading) { panic("broken subscriber") })
	tw.Subscribe(func(Reading) { survivor++ })
	rep := tw.RunCycle()
	want := len(rep.PhaseIReads) + len(rep.PhaseIIReads)
	if survivor != want {
		t.Fatalf("healthy subscriber saw %d readings, want %d", survivor, want)
	}
	if got := tw.Metrics().ListenerPanics; got != uint64(want) {
		t.Fatalf("ListenerPanics = %d, want %d", got, want)
	}
}
