package core

// Degraded-operation regression tests: what the cycle pipeline does when
// the device underneath it stalls or fails. The contract under test is
// the one the fleet layer depends on — a dead transport must surface as
// a cycle error (never a silent "0 tags present" report), must not spin,
// and must not erase learned state.

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"tagwatch/internal/epc"
	"tagwatch/internal/schedule"
)

// fakeDevice scripts Device behaviour per call: a frozen or advancing
// clock and canned ReadAll/ReadSelective results.
type fakeDevice struct {
	now       time.Duration
	readAll   func(call int) ([]Reading, error)
	selective func(masks []schedule.Bitmask, dwell time.Duration) ([]Reading, error)
	allCalls  int
	selCalls  int
}

func (d *fakeDevice) Now() time.Duration { return d.now }

func (d *fakeDevice) ReadAll() ([]Reading, error) {
	d.allCalls++
	if d.readAll == nil {
		return nil, nil
	}
	return d.readAll(d.allCalls)
}

func (d *fakeDevice) ReadSelective(masks []schedule.Bitmask, dwell time.Duration) ([]Reading, error) {
	d.selCalls++
	if d.selective == nil {
		return nil, nil
	}
	return d.selective(masks, dwell)
}

func testEPC(t *testing.T, hex string) epc.EPC {
	t.Helper()
	code, err := epc.Parse(hex)
	if err != nil {
		t.Fatal(err)
	}
	return code
}

// TestStalledDeviceDoesNotSpin: a device that returns nothing and never
// advances its clock (a wedged transport that has not yet errored). The
// generic fallback loop in Phase II consumes dwell in device time; with a
// frozen clock that loop would never reach its deadline — the pipeline
// must bail instead of spinning forever.
func TestStalledDeviceDoesNotSpin(t *testing.T) {
	dev := &fakeDevice{}
	cfg := DefaultConfig()
	cfg.PhaseIIDwell = 5 * time.Second // never consumable: the clock is frozen
	tw := New(cfg, dev)

	done := make(chan CycleReport, 1)
	go func() { done <- tw.RunCycle() }()
	select {
	case rep := <-done:
		if len(rep.PhaseIIReads) != 0 {
			t.Fatalf("stalled device produced %d Phase II readings", len(rep.PhaseIIReads))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunCycle spun on a stalled device with a frozen clock")
	}
	// The stalled loop must have bailed after one probing pass, not
	// hammered the dead transport.
	if dev.allCalls > 2 {
		t.Fatalf("stalled device probed %d times in one cycle", dev.allCalls)
	}
}

// TestPhaseIErrorSkipsPhaseII: a transport that dies during Phase I must
// surface a cycle error, keep whatever partial readings arrived, and not
// attempt Phase II over the dead link.
func TestPhaseIErrorSkipsPhaseII(t *testing.T) {
	code := testEPC(t, "300000000000000000000001")
	boom := errors.New("carrier lost")
	dev := &fakeDevice{
		readAll: func(int) ([]Reading, error) {
			return []Reading{{EPC: code, Time: 10 * time.Millisecond, Antenna: 1}}, boom
		},
	}
	tw := New(DefaultConfig(), dev)
	var delivered int
	tw.Subscribe(func(Reading) { delivered++ })

	rep := tw.RunCycle()
	if rep.Healthy() {
		t.Fatal("cycle over a dying transport reported healthy")
	}
	if !errors.Is(rep.Err, boom) || !strings.Contains(rep.Err.Error(), "phase I") {
		t.Fatalf("Err = %v, want wrapped phase I carrier loss", rep.Err)
	}
	// The partial reading is a real observation: delivered and counted.
	if delivered != 1 || len(rep.PhaseIReads) != 1 {
		t.Fatalf("partial readings dropped: delivered=%d phase1=%d", delivered, len(rep.PhaseIReads))
	}
	// Phase II never ran: no selective call, no second full pass.
	if dev.allCalls != 1 || dev.selCalls != 0 {
		t.Fatalf("phase II ran over a dead link: readAll=%d selective=%d", dev.allCalls, dev.selCalls)
	}
	if tw.Metrics().CycleErrors != 1 {
		t.Fatalf("CycleErrors = %d, want 1", tw.Metrics().CycleErrors)
	}
}

// TestPhaseIIErrorSurfaces: Phase I succeeds, then the transport dies in
// the Phase II fallback loop — the report must carry the error while
// keeping both phases' readings.
func TestPhaseIIErrorSurfaces(t *testing.T) {
	code := testEPC(t, "300000000000000000000002")
	boom := errors.New("socket reset")
	dev := &fakeDevice{}
	dev.readAll = func(call int) ([]Reading, error) {
		dev.now += 50 * time.Millisecond
		r := []Reading{{EPC: code, Time: dev.now, Antenna: 1}}
		if call == 1 {
			return r, nil // Phase I: healthy
		}
		return r, boom // Phase II fallback pass: dies mid-read
	}
	cfg := DefaultConfig()
	cfg.PhaseIIDwell = time.Second
	tw := New(cfg, dev)

	rep := tw.RunCycle()
	if !rep.FellBack {
		t.Fatalf("single stationary tag must fall back, got targets %v", rep.Targets)
	}
	if !errors.Is(rep.Err, boom) || !strings.Contains(rep.Err.Error(), "phase II") {
		t.Fatalf("Err = %v, want wrapped phase II reset", rep.Err)
	}
	if len(rep.PhaseIReads) != 1 || len(rep.PhaseIIReads) != 1 {
		t.Fatalf("partial readings dropped: phase1=%d phase2=%d", len(rep.PhaseIReads), len(rep.PhaseIIReads))
	}
}

// TestUnhealthyPauseGrowth pins the degraded-mode backoff shape: doubling
// from max(pause, base), saturating at the cap, never below the base.
func TestUnhealthyPauseGrowth(t *testing.T) {
	cases := []struct {
		pause time.Duration
		n     int
		want  time.Duration
	}{
		{0, 1, 100 * time.Millisecond},
		{0, 2, 200 * time.Millisecond},
		{0, 4, 800 * time.Millisecond},
		{0, 100, 10 * time.Second},
		{time.Second, 1, time.Second},
		{time.Second, 3, 4 * time.Second},
		{time.Second, 6, 10 * time.Second},
		{30 * time.Second, 1, 10 * time.Second},
	}
	for _, tc := range cases {
		if got := unhealthyPause(tc.pause, tc.n); got != tc.want {
			t.Errorf("unhealthyPause(%v, %d) = %v, want %v", tc.pause, tc.n, got, tc.want)
		}
	}
}

// TestRunDegradesOnFailingDevice: the continuous loop keeps delivering
// error-carrying reports from a dead device instead of going quiet or
// reporting empty-but-healthy cycles.
func TestRunDegradesOnFailingDevice(t *testing.T) {
	boom := errors.New("reader unplugged")
	dev := &fakeDevice{readAll: func(int) ([]Reading, error) { return nil, boom }}
	tw := New(DefaultConfig(), dev)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out := tw.Run(ctx, 0)

	for i := 0; i < 3; i++ {
		select {
		case rep, ok := <-out:
			if !ok {
				t.Fatal("report channel closed early")
			}
			if rep.Err == nil {
				t.Fatalf("cycle %d from a dead device reported healthy", i)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("no report %d from the degraded loop (pause runaway?)", i)
		}
	}
	cancel()
	for range out {
	}
}
