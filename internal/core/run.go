package core

import (
	"context"
	"io"
	"time"
)

// Run executes reading cycles continuously until the context is cancelled,
// delivering each cycle's report on the returned channel (closed on exit).
// This is the long-lived deployment shape of Fig. 6: cycles "occur
// alternatively and periodically". A non-positive pause runs back-to-back
// cycles; a positive pause idles the reader between cycles (duty cycling).
//
// Run owns the Tagwatch instance while active: RunCycle must not be called
// concurrently (the middleware is single-threaded by design, like the
// reader's medium access).
func (tw *Tagwatch) Run(ctx context.Context, pause time.Duration) <-chan CycleReport {
	out := make(chan CycleReport)
	go func() {
		defer close(out)
		for {
			if ctx.Err() != nil {
				return
			}
			rep := tw.RunCycle()
			select {
			case out <- rep:
			case <-ctx.Done():
				return
			}
			if pause > 0 {
				if sd, ok := tw.dev.(*SimDevice); ok {
					// Virtual-time devices idle on the simulated clock.
					sd.R.Advance(pause)
				} else {
					select {
					case <-time.After(pause):
					case <-ctx.Done():
						return
					}
				}
			}
		}
	}()
	return out
}

// SaveState persists the middleware's learned state (the motion detector's
// immobility models) so a restart resumes without a cold start.
func (tw *Tagwatch) SaveState(w io.Writer) error { return tw.det.Save(w) }

// LoadState restores state written by SaveState.
func (tw *Tagwatch) LoadState(r io.Reader) error { return tw.det.Load(r) }
