package core

import (
	"context"
	"time"
)

// unhealthyPauseBase and unhealthyPauseMax bound the degraded-mode
// backoff Run applies between failing cycles: the pause doubles from the
// base (or the configured pause, whichever is larger) on each
// consecutive cycle error, saturating at the max, and snaps back to the
// configured pause on the first healthy cycle.
const (
	unhealthyPauseBase = 100 * time.Millisecond
	unhealthyPauseMax  = 10 * time.Second
)

// Run executes reading cycles continuously until the context is cancelled,
// delivering each cycle's report on the returned channel (closed on exit).
// This is the long-lived deployment shape of Fig. 6: cycles "occur
// alternatively and periodically". A non-positive pause runs back-to-back
// cycles; a positive pause idles the reader between cycles (duty cycling).
//
// Failures degrade rather than spin: when a cycle reports a transport
// error the loop keeps delivering (error-carrying) reports but grows the
// inter-cycle pause exponentially, so a dead reader costs retries per
// tens-of-seconds instead of a hot loop of doomed ROSpecs.
//
// Run owns the Tagwatch instance while active: RunCycle must not be called
// concurrently (the middleware is single-threaded by design, like the
// reader's medium access).
func (tw *Tagwatch) Run(ctx context.Context, pause time.Duration) <-chan CycleReport {
	out := make(chan CycleReport)
	go func() {
		defer close(out)
		consecErrs := 0
		for {
			if ctx.Err() != nil {
				return
			}
			rep := tw.RunCycle()
			if rep.Err != nil {
				consecErrs++
			} else {
				consecErrs = 0
			}
			select {
			case out <- rep:
			case <-ctx.Done():
				return
			}
			delay := pause
			if consecErrs > 0 {
				delay = unhealthyPause(pause, consecErrs)
			}
			if delay > 0 {
				if sd, ok := tw.dev.(*SimDevice); ok {
					// Virtual-time devices idle on the simulated clock.
					sd.R.Advance(delay)
				} else {
					select {
					case <-time.After(delay):
					case <-ctx.Done():
						return
					}
				}
			}
		}
	}()
	return out
}

// unhealthyPause computes the degraded-mode inter-cycle delay after n
// consecutive cycle errors (n >= 1).
func unhealthyPause(pause time.Duration, n int) time.Duration {
	base := pause
	if base < unhealthyPauseBase {
		base = unhealthyPauseBase
	}
	d := base
	for i := 1; i < n; i++ {
		d *= 2
		if d >= unhealthyPauseMax {
			return unhealthyPauseMax
		}
	}
	if d > unhealthyPauseMax {
		d = unhealthyPauseMax
	}
	return d
}
