package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"tagwatch/internal/aloha"
	"tagwatch/internal/epc"
	"tagwatch/internal/llrp"
	"tagwatch/internal/schedule"
)

// LLRPDevice drives a reader over the LLRP wire protocol — the production
// transport of the paper's prototype (ImpinJ LTK → here our own LLRP
// client). Each ReadAll/ReadSelective call compiles to one ROSpec,
// executes it, and drains the report stream.
type LLRPDevice struct {
	// Conn is an established LLRP connection.
	Conn *llrp.Conn
	// PhaseIDwell bounds the read-everything pass (the paper sizes Phase I
	// "dynamically on the total number of tags"; over the wire we bound it
	// with a duration trigger).
	PhaseIDwell time.Duration
	// MaskSlice is the per-AISpec duration for each bitmask in Phase II.
	MaskSlice time.Duration
	// IdleGap is the wall-clock silence after which the report stream of a
	// finished ROSpec is considered drained.
	IdleGap time.Duration
	// Session/InitialQ are forwarded in the C1G2 singulation control.
	Session  uint8
	InitialQ uint8
	// AdaptPhaseI resizes the Phase I dwell from the last observed
	// population: the paper sizes Phase I "dynamically depending on the
	// total number of tags". The dwell tracks 1.5 × C(n) under the paper
	// cost model, clamped to [100 ms, 2 s].
	AdaptPhaseI bool

	nextID uint32
	base   uint64 // UTC µs of the first report; maps wire time to Duration
	latest time.Duration
}

// NewLLRPDevice wraps a connection with the paper's defaults.
func NewLLRPDevice(conn *llrp.Conn) *LLRPDevice {
	return &LLRPDevice{
		Conn:        conn,
		PhaseIDwell: 300 * time.Millisecond,
		MaskSlice:   100 * time.Millisecond,
		IdleGap:     150 * time.Millisecond,
		Session:     1,
		InitialQ:    4,
		AdaptPhaseI: true,
	}
}

// Now implements Device: the latest device timestamp observed.
func (d *LLRPDevice) Now() time.Duration { return d.latest }

// ReadAll implements Device.
func (d *LLRPDevice) ReadAll() ([]Reading, error) {
	spec := d.buildSpec(nil, d.PhaseIDwell, d.PhaseIDwell)
	reads, err := d.runSpec(spec)
	if d.AdaptPhaseI {
		distinct := make(map[epc.EPC]struct{}, len(reads))
		for _, r := range reads {
			distinct[r.EPC] = struct{}{}
		}
		if n := len(distinct); n > 0 {
			dwell := 3 * aloha.PaperCostModel().Cost(n) / 2
			if dwell < 100*time.Millisecond {
				dwell = 100 * time.Millisecond
			}
			if dwell > 2*time.Second {
				dwell = 2 * time.Second
			}
			d.PhaseIDwell = dwell
		}
	}
	return reads, err
}

// ReadSelective implements Device.
func (d *LLRPDevice) ReadSelective(masks []schedule.Bitmask, dwell time.Duration) ([]Reading, error) {
	if len(masks) == 0 || dwell <= 0 {
		return nil, nil
	}
	spec := d.buildSpec(masks, d.MaskSlice, dwell)
	return d.runSpec(spec)
}

// buildSpec compiles bitmasks into an ROSpec: one AISpec per bitmask
// (§6's "we adopt the second method by default"), cycling until the
// ROSpec duration elapses.
func (d *LLRPDevice) buildSpec(masks []schedule.Bitmask, slice, total time.Duration) llrp.ROSpec {
	d.nextID++
	spec := llrp.ROSpec{
		ID: d.nextID,
		Boundary: llrp.ROBoundarySpec{
			StartTrigger: llrp.StartTriggerNull,
			StopTrigger:  llrp.StopTriggerDuration,
			DurationMS:   uint32(total / time.Millisecond),
		},
	}
	mkAISpec := func(filters []llrp.C1G2Filter) llrp.AISpec {
		return llrp.AISpec{
			AntennaIDs:  []uint16{0}, // all antennas
			StopTrigger: llrp.AISpecStopTrigger{Type: llrp.AIStopDuration, DurationMS: uint32(slice / time.Millisecond)},
			Inventories: []llrp.InventoryParameterSpec{{
				ID: 1,
				Commands: []llrp.C1G2InventoryCommand{{
					Session:  d.Session,
					InitialQ: d.InitialQ,
					Filters:  filters,
				}},
			}},
		}
	}
	if len(masks) == 0 {
		spec.AISpecs = []llrp.AISpec{mkAISpec(nil)}
		return spec
	}
	for _, m := range masks {
		spec.AISpecs = append(spec.AISpecs, mkAISpec([]llrp.C1G2Filter{{
			Mask: llrp.C1G2TagInventoryMask{
				MemBank: epc.BankEPC,
				Pointer: uint16(epc.EPCWordOffset + m.Pointer),
				Mask:    m.Mask,
			},
		}}))
	}
	return spec
}

// runSpec installs, runs and drains one ROSpec, then deletes it. The
// error reports transport failure — control operations rejected or timed
// out, or the connection dying mid-spec — alongside whatever readings
// arrived first. A clean drain (end event or idle gap) is not an error.
func (d *LLRPDevice) runSpec(spec llrp.ROSpec) ([]Reading, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := d.Conn.AddROSpec(ctx, spec); err != nil {
		return nil, fmt.Errorf("add ROSpec %d: %w", spec.ID, err)
	}
	defer d.Conn.DeleteROSpec(ctx, spec.ID)
	if err := d.Conn.EnableROSpec(ctx, spec.ID); err != nil {
		return nil, fmt.Errorf("enable ROSpec %d: %w", spec.ID, err)
	}
	if err := d.Conn.StartROSpec(ctx, spec.ID); err != nil {
		return nil, fmt.Errorf("start ROSpec %d: %w", spec.ID, err)
	}
	var out []Reading
	idle := d.IdleGap
	if idle <= 0 {
		idle = 150 * time.Millisecond
	}
	// connErr shapes the connection's terminal error once the report
	// stream closes under us.
	connErr := func() error {
		if err := d.Conn.Err(); err != nil {
			return fmt.Errorf("connection died mid-ROSpec: %w", err)
		}
		return fmt.Errorf("report stream closed mid-ROSpec")
	}
	deadline := time.After(30 * time.Second)
	drain := func(gap time.Duration) {
		for {
			select {
			case batch, ok := <-d.Conn.Reports():
				if !ok {
					return
				}
				for _, tr := range batch {
					out = append(out, d.toReading(tr))
				}
			case <-time.After(gap):
				return
			}
		}
	}
	for {
		select {
		case batch, ok := <-d.Conn.Reports():
			if !ok {
				return out, connErr()
			}
			for _, tr := range batch {
				out = append(out, d.toReading(tr))
			}
		case ev, ok := <-d.Conn.Events():
			if !ok {
				return out, connErr()
			}
			// The reader notifies when a duration-triggered ROSpec ends:
			// drain in-flight reports briefly and return without waiting
			// out the idle gap.
			if ev.ROSpec != nil && ev.ROSpec.Type == llrp.ROSpecEnded && ev.ROSpec.ROSpecID == spec.ID {
				drain(20 * time.Millisecond)
				return out, nil
			}
		case <-time.After(idle):
			// Fallback for readers that do not send end events. A stop
			// failure here means the link is gone, not merely quiet.
			if err := d.Conn.StopROSpec(ctx, spec.ID); err != nil {
				return out, fmt.Errorf("stop ROSpec %d after idle gap: %w", spec.ID, err)
			}
			return out, nil
		case <-deadline:
			// tagwatchvet(deverr): the stop failure is evidence too — it
			// distinguishes "reader wedged but link alive" from "link dead".
			stopErr := d.Conn.StopROSpec(ctx, spec.ID)
			return out, errors.Join(fmt.Errorf("ROSpec %d overran the 30s guard", spec.ID), stopErr)
		}
	}
}

// toReading converts a wire tag report into the middleware reading.
func (d *LLRPDevice) toReading(tr llrp.TagReportData) Reading {
	if d.base == 0 || tr.FirstSeenUTC < d.base {
		d.base = tr.FirstSeenUTC
	}
	t := time.Duration(tr.FirstSeenUTC-d.base) * time.Microsecond
	if t > d.latest {
		d.latest = t
	}
	return Reading{
		EPC:      tr.EPC,
		Time:     t,
		Antenna:  int(tr.AntennaID),
		Channel:  int(tr.ChannelIndex) - 1, // wire is 1-based
		PhaseRad: tr.PhaseRadians(),
		RSSdBm:   float64(tr.PeakRSSIdBm),
	}
}
