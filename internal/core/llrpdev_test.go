package core

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"tagwatch/internal/epc"
	"tagwatch/internal/llrp"
	"tagwatch/internal/reader"
	"tagwatch/internal/rf"
	"tagwatch/internal/scene"
	"tagwatch/internal/schedule"
)

// startLLRPRig spins up a reader emulator over TCP plus a connected
// LLRPDevice.
func startLLRPRig(t *testing.T, seed int64, n int) (*LLRPDevice, []epc.EPC) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	scn := scene.New(rf.NewChannel(rf.DefaultParams(), rng), rng)
	scn.AddAntenna(rf.Pt(0, 0, 2))
	codes, err := epc.RandomPopulation(rng, n, 96)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range codes {
		scn.AddTag(c, scene.Stationary{P: rf.Pt(0.5+float64(i%8)*0.3, 0.5+float64(i/8)*0.3, 0)})
	}
	eng := reader.New(reader.DefaultConfig(), scn)
	srv := llrp.NewServer(eng, llrp.ServerConfig{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	t.Cleanup(cancel)
	conn, err := llrp.Dial(ctx, addr.String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return NewLLRPDevice(conn), codes
}

func TestLLRPDeviceReadAll(t *testing.T) {
	dev, codes := startLLRPRig(t, 1, 6)
	reads, err := dev.ReadAll()
	if err != nil {
		t.Fatalf("ReadAll over a healthy link: %v", err)
	}
	seen := map[epc.EPC]int{}
	for _, r := range reads {
		seen[r.EPC]++
		if r.Antenna != 1 {
			t.Fatalf("antenna = %d", r.Antenna)
		}
		if r.Channel < 0 || r.Channel > 15 {
			t.Fatalf("channel = %d", r.Channel)
		}
		if r.PhaseRad < 0 || r.PhaseRad >= 2*3.15 {
			t.Fatalf("phase = %v", r.PhaseRad)
		}
	}
	for _, c := range codes {
		if seen[c] == 0 {
			t.Fatalf("tag %s never read over LLRP", c)
		}
	}
	if dev.Now() <= 0 {
		t.Fatal("device clock must advance from report timestamps")
	}
}

func TestLLRPDeviceReadSelective(t *testing.T) {
	dev, codes := startLLRPRig(t, 2, 8)
	target := codes[2]
	masks := []schedule.Bitmask{{Mask: target, Pointer: 0}}
	reads, err := dev.ReadSelective(masks, 400*time.Millisecond)
	if err != nil {
		t.Fatalf("ReadSelective over a healthy link: %v", err)
	}
	if len(reads) == 0 {
		t.Fatal("selective reading returned nothing")
	}
	for _, r := range reads {
		if r.EPC != target {
			t.Fatalf("selective reading leaked %s", r.EPC)
		}
	}
	// Degenerate inputs.
	if reads, err := dev.ReadSelective(nil, time.Second); reads != nil || err != nil {
		t.Fatal("no masks must read nothing")
	}
	if reads, err := dev.ReadSelective(masks, 0); reads != nil || err != nil {
		t.Fatal("zero dwell must read nothing")
	}
}

func TestTagwatchOverLLRP(t *testing.T) {
	// The full middleware driving a reader over the wire: one complete
	// cycle must produce Phase I readings, assessments and a Phase II.
	dev, _ := startLLRPRig(t, 3, 6)
	cfg := DefaultConfig()
	cfg.PhaseIIDwell = 300 * time.Millisecond
	tw := New(cfg, dev)
	rep := tw.RunCycle()
	if len(rep.PhaseIReads) == 0 {
		t.Fatal("Phase I over LLRP read nothing")
	}
	if len(rep.Present) == 0 {
		t.Fatal("no tags present")
	}
	if len(rep.PhaseIIReads) == 0 {
		t.Fatal("Phase II over LLRP read nothing")
	}
	// Cold start: everything looks mobile, so the cycle must have either
	// fallen back or scheduled every present tag.
	if !rep.FellBack && len(rep.Targets) == 0 {
		t.Fatal("cold-start cycle must target or fall back")
	}
}
