package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"tagwatch/internal/motion"
	"tagwatch/internal/statestore"
)

// TestCheckpointerRoundTripWithRestart is the kill-and-restart
// acceptance test on the happy path: run cycles under a Checkpointer
// (snapshot mid-run, journal tail after it, a forget-and-relearn in the
// middle), close, and restore into a fresh middleware. The restored
// learned state must be byte-identical.
func TestCheckpointerRoundTripWithRestart(t *testing.T) {
	dir := t.TempDir()
	st, err := statestore.Open(dir, statestore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tw, _, movers, static := paperRig(t, 91, 6, 1, 0)
	cp := NewCheckpointer(tw, st)
	cp.SnapshotEvery = 4
	if err := cp.Restore(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		tw.RunCycle()
		switch i {
		case 1:
			tw.Pin(movers[0])
		case 2:
			// Departed tag: tombstone goes to the journal; the tag is
			// still in the scene, so cycle 3 relearns it and the same
			// batch carries tombstone-then-fresh-link.
			tw.Detector().Forget(static[1])
		case 4:
			tw.Pin(static[0])
			tw.Unpin(movers[0])
		}
		if err := cp.AfterCycle(); err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
	}
	var want bytes.Buffer
	if err := tw.det.Save(&want); err != nil {
		t.Fatal(err)
	}
	wantPins := tw.pinnedList()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := statestore.Open(dir, statestore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	rec := st2.Recovery()
	if !rec.HasSnapshot {
		t.Fatal("no snapshot recovered — SnapshotEvery never fired")
	}
	if len(rec.Records) == 0 {
		t.Fatal("no journal tail recovered — replay path not exercised")
	}
	tw2, _, _, _ := paperRig(t, 91, 6, 1, 0)
	cp2 := NewCheckpointer(tw2, st2)
	if err := cp2.Restore(); err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := tw2.det.Save(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatal("restored learned state differs from the pre-restart state")
	}
	if gotPins := tw2.pinnedList(); strings.Join(gotPins, ",") != strings.Join(wantPins, ",") {
		t.Fatalf("restored pins %v, want %v", gotPins, wantPins)
	}
	// Metrics travel in snapshots only: the restored counters are the
	// ones frozen at the snapshot (cycle 4), not the journal tail's.
	if c := tw2.Metrics().Cycles; c != 4 {
		t.Fatalf("restored metrics cycles = %d, want 4", c)
	}
	// Restored state must not be re-journaled as if freshly dirtied.
	recs, err := tw2.JournalRecords()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("restore left %d records dirty", len(recs))
	}
	// And the resumed middleware keeps running and checkpointing.
	tw2.RunCycle()
	if err := cp2.AfterCycle(); err != nil {
		t.Fatal(err)
	}
}

// engineTrace is the durability bookkeeping of one engine workload run:
// every link image and pin list emitted to the store, and the floor —
// the latest of each that was ACKED before the crash.
type engineTrace struct {
	emitted         map[string][]string // link key -> normalized images, emit order
	ackedIdx        map[string]int      // link key -> floor index into emitted
	pinsSeq         []string            // emitted pin lists (joined)
	ackedPin        int                 // floor index into pinsSeq; -1 none
	ackedSnapCycles int                 // Metrics.Cycles at the last acked snapshot
	cycles          int
}

// linkNorm returns a link's identity key and its image with LastSeen
// zeroed (LastSeen is per-tag, so a later drain of a sibling link
// legitimately advances it; mode state must still match exactly).
func linkNorm(ls motion.LinkState) (string, string) {
	k := fmt.Sprintf("%s/%d/%d", ls.EPC, ls.Antenna, ls.Channel)
	ls.LastSeen = 0
	b, err := json.Marshal(ls)
	if err != nil {
		panic(err)
	}
	return k, string(b)
}

// runEngineWorkload drives a deterministic middleware + store script
// until it finishes or the filesystem crashes, tracking the durability
// floor. The rig, the cycle sequence, and therefore every emitted record
// are identical across runs — only the crash point varies.
func runEngineWorkload(t *testing.T, fsys statestore.FS, dir string) engineTrace {
	t.Helper()
	tr := engineTrace{
		emitted:  map[string][]string{},
		ackedIdx: map[string]int{},
		ackedPin: -1,
	}
	st, err := statestore.Open(dir, statestore.Options{FS: fsys, Retain: 2})
	if err != nil {
		return tr
	}
	defer st.Close()

	tw, _, movers, static := paperRig(t, 91, 6, 1, 0)
	tw.cfg.DepartAfter = 0 // keep link histories monotone for the sweep
	for i := 0; i < 10; i++ {
		tw.RunCycle()
		tr.cycles++
		switch i {
		case 2:
			tw.Pin(movers[0])
		case 5:
			tw.Pin(static[0])
		case 6:
			tw.Unpin(movers[0])
		}

		recs, err := tw.JournalRecords()
		if err != nil {
			t.Fatal(err) // marshalling our own state cannot fail
		}
		batchLinks := map[string]int{}
		batchPin := -1
		for _, raw := range recs {
			var rec Record
			if err := json.Unmarshal(raw, &rec); err != nil {
				t.Fatal(err)
			}
			switch rec.Type {
			case "link":
				k, body := linkNorm(*rec.Link)
				tr.emitted[k] = append(tr.emitted[k], body)
				batchLinks[k] = len(tr.emitted[k]) - 1
			case "pins":
				tr.pinsSeq = append(tr.pinsSeq, strings.Join(rec.Pins, ","))
				batchPin = len(tr.pinsSeq) - 1
			}
		}

		if i%4 == 3 {
			// Snapshot cycle: the drained records are covered by the
			// snapshot (same policy as Checkpointer). Success acks the
			// entire current state.
			var buf bytes.Buffer
			if err := tw.SaveState(&buf); err != nil {
				t.Fatal(err)
			}
			if err := st.WriteSnapshot(buf.Bytes()); err != nil {
				return tr
			}
			for k, versions := range tr.emitted {
				tr.ackedIdx[k] = len(versions) - 1
			}
			if len(tr.pinsSeq) > 0 {
				tr.ackedPin = len(tr.pinsSeq) - 1
			}
			tr.ackedSnapCycles = tw.Metrics().Cycles
		} else if len(recs) > 0 {
			if err := st.AppendBatch(recs); err != nil {
				return tr
			}
			for k, idx := range batchLinks {
				tr.ackedIdx[k] = idx
			}
			if batchPin >= 0 {
				tr.ackedPin = batchPin
			}
		}
	}
	return tr
}

// verifyEngineRecovered restores the crashed directory into a fresh
// middleware and checks the durability floor: every acked link image is
// recovered at its acked version or a later emitted one, nothing
// recovered was never emitted, the pin set is at or past its acked
// value, and metrics are at or past the last acked snapshot.
func verifyEngineRecovered(t *testing.T, dir string, tr engineTrace, label string) {
	t.Helper()
	st, err := statestore.Open(dir, statestore.Options{})
	if err != nil {
		t.Fatalf("%s: reopen: %v", label, err)
	}
	defer st.Close()
	tw, _, _, _ := paperRig(t, 91, 6, 1, 0)
	cp := NewCheckpointer(tw, st)
	if err := cp.Restore(); err != nil {
		t.Fatalf("%s: restore surfaced corrupt state: %v", label, err)
	}

	var buf bytes.Buffer
	if err := tw.det.Save(&buf); err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Stacks []motion.LinkState `json:"stacks"`
	}
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	restored := map[string]string{}
	for _, ls := range snap.Stacks {
		k, body := linkNorm(ls)
		restored[k] = body
	}

	for k, floor := range tr.ackedIdx {
		body, ok := restored[k]
		if !ok {
			t.Fatalf("%s: acked link %s lost", label, k)
		}
		found := false
		for _, v := range tr.emitted[k][floor:] {
			if v == body {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("%s: link %s recovered at a pre-ack or corrupt version", label, k)
		}
	}
	for k, body := range restored {
		found := false
		for _, v := range tr.emitted[k] {
			if v == body {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("%s: recovered link %s was never emitted", label, k)
		}
	}

	pins := strings.Join(tw.pinnedList(), ",")
	okPins := tr.ackedPin < 0 && pins == ""
	start := tr.ackedPin
	if start < 0 {
		start = 0
	}
	for _, p := range tr.pinsSeq[start:] {
		if p == pins {
			okPins = true
		}
	}
	if !okPins {
		t.Fatalf("%s: recovered pins %q below acked floor (seq %v, acked %d)",
			label, pins, tr.pinsSeq, tr.ackedPin)
	}

	if c := tw.Metrics().Cycles; c < tr.ackedSnapCycles || c > tr.cycles {
		t.Fatalf("%s: recovered metrics cycles = %d, acked floor %d, ceiling %d",
			label, c, tr.ackedSnapCycles, tr.cycles)
	}
}

// TestCrashEngineRestartSweep is the tentpole proof at the engine layer:
// the full middleware-over-statestore pipeline is killed at every
// filesystem mutation in turn — mid-append, mid-snapshot, mid-rename —
// and each time a fresh middleware restores from the wreckage with every
// durably-acked GMM mode, pin, and counter intact.
func TestCrashEngineRestartSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("crash sweep re-runs the engine workload per op")
	}
	dry := statestore.NewCrashFS(statestore.OSFS{}, 0)
	runEngineWorkload(t, dry, t.TempDir())
	total := dry.Ops()
	if total < 20 {
		t.Fatalf("engine workload issued only %d fs ops", total)
	}
	for op := 0; op < total; op++ {
		dir := t.TempDir()
		cfs := statestore.NewCrashFS(statestore.OSFS{}, int64(op)*31+7)
		cfs.CrashAt(op)
		tr := runEngineWorkload(t, cfs, dir)
		if !cfs.Crashed() {
			t.Fatalf("op %d: workload finished without crashing", op)
		}
		verifyEngineRecovered(t, dir, tr, fmt.Sprintf("op %d", op))
	}
}
