// Package core implements the Tagwatch middleware itself: the two-phase
// rate-adaptive reading controller of §3 that sits between a Gen2 reader
// and upper applications.
//
// Each cycle runs Phase I (inventory everything briefly, assess motion
// from RF phase via the motion package) and Phase II (cover the mobile and
// pinned tags with Select bitmasks via the schedule package, then read
// only them for the dwell window). All readings from both phases are
// delivered upstream and feed the self-learning immobility models.
//
// The controller drives an abstract Device, with two implementations: a
// direct binding to the reader simulator (SimDevice, used by experiments
// and benchmarks) and an LLRP client binding (LLRPDevice, used by the
// tagwatchd daemon against a real or emulated reader over TCP).
package core

import (
	"time"

	"tagwatch/internal/epc"
	"tagwatch/internal/reader"
	"tagwatch/internal/schedule"
)

// Reading is one tag observation as the middleware sees it, regardless of
// transport.
type Reading struct {
	EPC      epc.EPC
	Time     time.Duration // device-virtual timestamp
	Antenna  int
	Channel  int
	PhaseRad float64
	RSSdBm   float64
}

// Device is the reader abstraction Tagwatch drives.
//
// Failures are first-class: a dying transport must be distinguishable
// from an empty RF field, so both read methods return an error alongside
// whatever readings arrived before the failure. Partial readings with a
// non-nil error are real observations and are still delivered upstream;
// the error tells the cycle pipeline to degrade instead of concluding
// "0 tags present".
type Device interface {
	// ReadAll performs one full inventory pass over every antenna — the
	// Phase I read and the "reading all" baseline.
	ReadAll() ([]Reading, error)
	// ReadSelective cycles selective inventory rounds over the given
	// bitmasks for the dwell window, reading only covered tags.
	ReadSelective(masks []schedule.Bitmask, dwell time.Duration) ([]Reading, error)
	// Now reports the device clock (virtual for the simulator).
	Now() time.Duration
}

// SimDevice binds the middleware directly to the reader simulator.
type SimDevice struct {
	R *reader.Reader
}

// NewSimDevice wraps a simulator reader.
func NewSimDevice(r *reader.Reader) *SimDevice { return &SimDevice{R: r} }

// Now implements Device.
func (d *SimDevice) Now() time.Duration { return d.R.Now() }

func toReadings(in []reader.TagRead) []Reading {
	out := make([]Reading, len(in))
	for i, r := range in {
		out[i] = Reading{
			EPC: r.EPC, Time: r.Time, Antenna: r.Antenna,
			Channel: r.Channel, PhaseRad: r.PhaseRad, RSSdBm: r.RSSdBm,
		}
	}
	return out
}

// ReadAll implements Device. The in-process simulator cannot fail, so
// the error is always nil.
func (d *SimDevice) ReadAll() ([]Reading, error) {
	return toReadings(d.R.InventoryAll()), nil
}

// ReadSelective implements Device: masks run round-robin, one selective
// round per antenna each, until the dwell window is exhausted — the
// "multiple AISpecs" execution of §6.
func (d *SimDevice) ReadSelective(masks []schedule.Bitmask, dwell time.Duration) ([]Reading, error) {
	var out []Reading
	if len(masks) == 0 || dwell <= 0 {
		return out, nil
	}
	deadline := d.R.Now() + dwell
	for {
		for _, m := range masks {
			cmd := m.SelectCmd()
			for _, ant := range d.R.Scene().Antennas {
				remaining := deadline - d.R.Now()
				if remaining <= 0 {
					return out, nil
				}
				reads, _ := d.R.RunRound(reader.RoundOpts{
					Antenna: ant.ID,
					Filter:  &cmd,
					Budget:  remaining,
				})
				out = append(out, toReadings(reads)...)
			}
		}
	}
}

// ReadAllFor keeps running full inventory passes until the dwell window is
// exhausted — the read-all fallback of §3 ("switch back to the old
// fashion") and the baseline arm of the experiments.
func (d *SimDevice) ReadAllFor(dwell time.Duration) []Reading {
	var out []Reading
	deadline := d.R.Now() + dwell
	for d.R.Now() < deadline {
		for _, ant := range d.R.Scene().Antennas {
			remaining := deadline - d.R.Now()
			if remaining <= 0 {
				break
			}
			reads, _ := d.R.RunRound(reader.RoundOpts{Antenna: ant.ID, Budget: remaining})
			out = append(out, toReadings(reads)...)
		}
	}
	return out
}
