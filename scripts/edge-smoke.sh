#!/bin/sh
# edge-smoke: the fan-out survival drill against real processes.
#
# Topology: readersim (LLRP emulator) <- fleetd (primary) <- edged
# (fan-out mirror). The drill waits for the edge mirror to anchor and
# converge on the primary's EPC set, then SIGKILLs fleetd mid-stream
# and restarts it — a fresh process with a fresh bus identity and an
# empty registry that re-fills from the same simulated field.
#
# Pass criteria:
#   - edged's /healthz answers throughout (degraded is fine, dead is not)
#   - the link re-anchors with EXACTLY ONE additional reset (a fresh
#     identity must cost one reset, not a reset storm)
#   - contiguity_violations stays 0 (no silent loss, ever)
#   - the mirror's EPC set re-converges to the reborn primary's
set -eu

cd "$(dirname "$0")/.."

LLRP=127.0.0.1:15084
FLEET=127.0.0.1:18080
EDGE=127.0.0.1:18081
BIN=bin/edge-smoke
LOG=/tmp/tagwatch-edge-smoke
mkdir -p "$BIN" "$LOG"

go build -o "$BIN/readersim" ./cmd/readersim
go build -o "$BIN/fleetd" ./cmd/fleetd
go build -o "$BIN/edged" ./cmd/edged

SIM_PID=""
FLEET_PID=""
EDGE_PID=""
cleanup() {
	kill $SIM_PID $FLEET_PID $EDGE_PID 2>/dev/null || true
	wait 2>/dev/null || true
}
trap cleanup EXIT INT TERM

fail() {
	echo "edge-smoke: FAIL: $1" >&2
	echo "--- edged status ---" >&2
	curl -fsS "http://$EDGE/api/status" >&2 2>/dev/null || true
	echo "--- edged log tail ---" >&2
	tail -20 "$LOG/edged.log" >&2 2>/dev/null || true
	echo "--- fleetd log tail ---" >&2
	tail -20 "$LOG/fleetd.log" >&2 2>/dev/null || true
	exit 1
}

# link_num FIELD: one numeric field out of edged's indented status JSON
# (every field sits on its own line, so grep -o is enough — same
# convention as replay-smoke's fingerprint check).
link_num() {
	curl -fsS "http://$EDGE/api/status" 2>/dev/null |
		grep -o "\"$1\": [0-9]*" | head -1 | awk '{print $2}'
}

link_connected() {
	curl -fsS "http://$EDGE/api/status" 2>/dev/null |
		grep -q '"connected": true'
}

epc_set() {
	curl -fsS "http://$1/api/tags" 2>/dev/null |
		grep -o '"epc": "[0-9a-fA-F]*"' | sort -u
}

start_fleetd() {
	"$BIN/fleetd" -readers "$LLRP" -http "$FLEET" -dwell 300ms -quiet \
		>>"$LOG/fleetd.log" 2>&1 &
	FLEET_PID=$!
}

# converged: edge mirror non-empty and EPC-set-equal to the primary.
converged() {
	up=$(epc_set "$FLEET")
	down=$(epc_set "$EDGE")
	test -n "$up" && test "$up" = "$down"
}

: >"$LOG/fleetd.log"
"$BIN/readersim" -listen "$LLRP" -tags 24 -movers 2 -seed 7 -timescale 0.2 \
	>"$LOG/readersim.log" 2>&1 &
SIM_PID=$!
start_fleetd
"$BIN/edged" -upstream "$FLEET" -http "$EDGE" \
	-backoff-base 50ms -backoff-max 500ms -quiet \
	>"$LOG/edged.log" 2>&1 &
EDGE_PID=$!

# Phase 1: the edge anchors and mirrors the live field.
i=0
until link_connected && converged; do
	i=$((i + 1))
	test "$i" -le 120 || fail "edge never converged on the first primary"
	sleep 1
done
R0=$(link_num resets)
test -n "$R0" || fail "no resets counter in /api/status"
echo "edge-smoke: converged on primary ($(epc_set "$EDGE" | wc -l) EPCs, $R0 reset(s))"

# Phase 2: kill the primary mid-stream. The edge must keep answering
# (degraded, not dead) while the upstream is gone.
kill -9 "$FLEET_PID" 2>/dev/null || true
wait "$FLEET_PID" 2>/dev/null || true
sleep 2
curl -fsS "http://$EDGE/healthz" >/dev/null || fail "healthz died with the upstream"
! link_connected || fail "link still claims connected after the primary was killed"
echo "edge-smoke: primary killed, edge degraded but serving"

# Phase 3: a reborn primary — same address, fresh identity, empty
# registry re-filling from the same field. The edge must re-anchor with
# exactly one additional reset and re-converge.
start_fleetd
i=0
until link_connected && converged; do
	i=$((i + 1))
	test "$i" -le 120 || fail "edge never re-converged on the reborn primary"
	sleep 1
done

R1=$(link_num resets)
CV=$(link_num contiguity_violations)
IDC=$(link_num identity_changes)
test -n "$R1" && test -n "$CV" && test -n "$IDC" || fail "status counters missing after re-convergence"
test "$R1" -eq "$((R0 + 1))" || fail "want exactly one additional reset, got $R0 -> $R1"
test "$CV" -eq 0 || fail "contiguity_violations = $CV (silent loss)"
test "$IDC" -ge 1 || fail "identity change never detected across the restart"
curl -fsS "http://$EDGE/healthz" | grep -q ok || fail "healthz not ok after re-convergence"
echo "edge-smoke: PASS (resets $R0 -> $R1, identity_changes $IDC, contiguity_violations 0, $(epc_set "$EDGE" | wc -l) EPCs re-converged)"
