# Reproduces CI locally, one target per job. `make check` is the whole
# pipeline in CI order: cheap static analysis first, then the race
# tests, then the fuzz smoke.

# Pinned to the same versions as .github/workflows/ci.yml. Both run via
# `go run mod@version`, so they need network the first time; use
# `make lint-offline` on an air-gapped machine to run everything that
# resolves from the local build cache.
STATICCHECK = go run honnef.co/go/tools/cmd/staticcheck@2025.1.1
GOVULNCHECK = go run golang.org/x/vuln/cmd/govulncheck@v1.1.4

.PHONY: all build check lint lint-offline test race chaos crash soak fuzz-smoke bench replay-smoke failover-drill gauntlet gauntlet-smoke edge-smoke vettool clean

all: build

build:
	go build ./...

# The full CI pipeline in CI order.
check: lint race fuzz-smoke

# lint = the CI lint job: go vet, the repo's own invariant suite, then
# the pinned third-party analyzers.
lint: lint-offline
	$(STATICCHECK) ./...
	$(GOVULNCHECK) ./...

# Everything in lint that works with no network: go vet + tagwatchvet.
# The count check mirrors CI: a silently unregistered analyzer fails
# here, not months later when its invariant regresses unnoticed.
lint-offline:
	go build ./...
	go vet ./...
	@n=$$(go run ./cmd/tagwatchvet -list | wc -l); \
	test "$$n" -eq 7 || { echo "tagwatchvet registers $$n analyzers, want 7"; exit 1; }
	go run ./cmd/tagwatchvet ./internal/... ./cmd/...

test:
	go test ./...

race:
	go test -race ./...

# The chaos regression suite, named so a failure names itself.
chaos:
	go test -race -count=1 -run 'TestFleetRecoversFromBlackhole|TestFleetSurvivesCorruptionStorm' ./internal/fleet/
	go test -race -count=1 ./internal/chaos/

# The crash-injection suite: the durable statestore and its engine/fleet
# wiring, killed at every mutating filesystem operation (torn writes,
# skipped renames) and required to recover everything it acked durable.
crash:
	go test -race -count=1 -run 'TestCrash' ./internal/statestore/ ./internal/core/
	go test -race -count=1 -run 'TestFleetState' ./internal/fleet/

# The overload soak at acceptance scale: a million unique ghost EPCs and
# 500 greedy API clients against one manager, under the race detector
# with a hard memory ceiling. Proves the bounds hold (registry capped,
# quarantine ring fixed, heap flat), the counters fire (shed, rate
# limit, eviction, quarantine), /healthz answers throughout, and the
# restart round-trip restores only legitimate tags. Without
# TAGWATCH_SOAK=full the same test runs at a CI-friendly 100k scale
# inside the ordinary race job.
soak:
	TAGWATCH_SOAK=full GOMEMLIMIT=512MiB go test -race -count=1 -run TestSoakFloodSurvival -v ./internal/fleet/

# Short fuzz bursts on the wire-facing decoders, mirroring CI. Go allows
# one -fuzz target per invocation.
fuzz-smoke:
	go test -fuzz=FuzzDecodeFrame -fuzztime=10s -run '^$$' ./internal/llrp/
	go test -fuzz=FuzzParse -fuzztime=10s -run '^$$' ./internal/epc/

# The perf-trajectory rig: the core data-plane benchmarks (wire codec,
# schedule solver, motion model, EPC ops, WAL append, registry merge,
# scenario compile, event-bus fan-out and ring replay) rendered as
# BENCH_core.json. The file is checked in
# per PR and uploaded as a CI artifact, so ns/op / B/op / allocs/op form
# a reviewable trajectory across the repo's history. Absolute numbers
# vary by machine; the allocation counts should not.
BENCH_PKGS = ./internal/llrp ./internal/schedule ./internal/motion ./internal/epc ./internal/statestore ./internal/fleet ./internal/scenario
BENCH_SEL  = 'ROAccessReport|Select40Tags|Select400Tags|NewIndexTable|ObserveStationary|ObserveMoving|Peek|CRC16|MatchBits|WALAppend|JournalStream|RegistryObserve|CompileTimeline|BusPublishFanout|RingReplay'
bench:
	go test -run '^$$' -bench $(BENCH_SEL) -benchmem -benchtime=0.2s $(BENCH_PKGS) | go run ./cmd/benchjson > BENCH_core.json
	@cat BENCH_core.json

# The replay determinism gate: the retail-rush pack streamed through a
# real fleet at 100x virtual time, twice, under the race detector; the
# runs must agree on the report fingerprint (wall-clock timing is the
# only permitted difference).
replay-smoke:
	go run -race ./cmd/replayd -scenario retail-rush -speed 100 -report /tmp/tagwatch-replay-a.json
	go run -race ./cmd/replayd -scenario retail-rush -speed 100 -report /tmp/tagwatch-replay-b.json
	@fa=$$(grep -o '"fingerprint": "[0-9a-f]*"' /tmp/tagwatch-replay-a.json); \
	fb=$$(grep -o '"fingerprint": "[0-9a-f]*"' /tmp/tagwatch-replay-b.json); \
	test -n "$$fa" && test "$$fa" = "$$fb" || { echo "replay-smoke: fingerprint mismatch: $$fa vs $$fb"; exit 1; }; \
	echo "replay-smoke: deterministic ($$fa)"

# The failover acceptance gate: a retail-rush replay through a primary
# whose replication link is chaos-degraded (latency, truncation,
# corruption, resets, a half-open blackhole), killed mid-run at a seeded
# point with no final flush, standby promoted, run finished on the
# promoted fleet — whose registry fingerprint must match the
# no-failover control run. The test itself runs the drill twice, so one
# invocation already proves the drill deterministic; under -race.
failover-drill:
	go test -race -count=1 -run 'TestFailoverDrill' -v ./internal/replay/

# The fault gauntlet: the declarative campaign orchestrator runs the
# built-in smoke matrix — every fault kind (clean durable baseline,
# chaos/partitioned/flapping replication links through the failover
# drill, ENOSPC and EIO under the statestore, skewed reader clocks,
# stalled SSE consumers, a flapping edge fan-out link) against shrunk
# scenario packs, judged by the
# invariant oracles. Exit code 4 = at least one oracle failed.
gauntlet:
	go run ./cmd/gauntlet -campaign smoke -report /tmp/tagwatch-gauntlet.json
	@cat /tmp/tagwatch-gauntlet.json

# The gauntlet determinism gate, mirroring replay-smoke: the same
# campaign and seed twice under the race detector must agree on the
# verdict fingerprint (wall timings and fault counters are the only
# permitted differences), and both runs must pass every oracle.
gauntlet-smoke:
	go run -race ./cmd/gauntlet -campaign smoke -seed 1 -quiet -report /tmp/tagwatch-gauntlet-a.json
	go run -race ./cmd/gauntlet -campaign smoke -seed 1 -quiet -report /tmp/tagwatch-gauntlet-b.json
	@fa=$$(grep -o '"fingerprint": "[0-9a-f]*"' /tmp/tagwatch-gauntlet-a.json); \
	fb=$$(grep -o '"fingerprint": "[0-9a-f]*"' /tmp/tagwatch-gauntlet-b.json); \
	test -n "$$fa" && test "$$fa" = "$$fb" || { echo "gauntlet-smoke: fingerprint mismatch: $$fa vs $$fb"; exit 1; }; \
	echo "gauntlet-smoke: deterministic ($$fa)"

# The fan-out survival gate: real processes — readersim feeding a
# fleetd primary, an edged mirror following it over resumable SSE. The
# primary is SIGKILLed mid-stream and restarted (fresh bus identity,
# empty registry). edged must keep answering /healthz throughout,
# re-anchor with exactly ONE additional reset, report zero contiguity
# violations, and re-converge to the reborn primary's EPC set.
edge-smoke:
	sh scripts/edge-smoke.sh

# Builds the vet-protocol binary so `go vet -vettool=bin/tagwatchvet`
# integrates the suite with go vet's package driver and build cache.
vettool:
	go build -o bin/tagwatchvet ./cmd/tagwatchvet

clean:
	rm -rf bin
