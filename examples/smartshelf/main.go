// Smartshelf: a retail shelf of tagged items. Most items sit still; a
// shopper picks one up and walks away with it. Tagwatch notices the
// pick-up within a cycle and floods the moving item with readings — while
// a pinned high-value item is watched closely whether it moves or not.
//
//	go run ./examples/smartshelf
package main

import (
	"fmt"
	"math/rand"
	"time"

	"tagwatch/internal/core"
	"tagwatch/internal/epc"
	"tagwatch/internal/reader"
	"tagwatch/internal/rf"
	"tagwatch/internal/scene"
)

func main() {
	rng := rand.New(rand.NewSource(21))
	scn := scene.New(rf.NewChannel(rf.DefaultParams(), rng), rng)
	scn.AddAntenna(rf.Pt(0, 0, 2.5))

	items, err := epc.SequentialPopulation([]byte{0x30, 0x51}, 1000, 24, 96)
	if err != nil {
		panic(err)
	}
	// The item that will be picked up at t=30s and carried away.
	picked := items[0]
	pickupAt := 30 * time.Second
	scn.AddTag(picked, scene.Waypoints{
		T: []time.Duration{0, pickupAt, pickupAt + 8*time.Second},
		P: []rf.Point{rf.Pt(1.0, 0.6, 1.2), rf.Pt(1.0, 0.6, 1.2), rf.Pt(4.5, 3.5, 1.0)},
	})
	// A high-value item the operator pins for continuous surveillance.
	precious := items[1]
	scn.AddTag(precious, scene.Stationary{P: rf.Pt(0.4, 0.8, 1.6)})
	// The rest of the shelf.
	for i, c := range items[2:] {
		scn.AddTag(c, scene.Stationary{P: rf.Pt(0.4+float64(i%8)*0.35, 0.4+float64(i/8)*0.3, 1.2)})
	}

	dev := core.NewSimDevice(reader.New(reader.DefaultConfig(), scn))
	cfg := core.DefaultConfig()
	cfg.PhaseIIDwell = 2 * time.Second
	cfg.StickyFor = 5 * time.Second
	cfg.Pinned = []epc.EPC{precious}
	tw := core.New(cfg, dev)

	var pickupSeen time.Duration
	for i := 0; i < 22; i++ {
		rep := tw.RunCycle()
		pickedTargeted, preciousTargeted := false, false
		for _, c := range rep.Targets {
			if c == picked {
				pickedTargeted = true
			}
			if c == precious {
				preciousTargeted = true
			}
		}
		if pickedTargeted && dev.Now() > pickupAt && pickupSeen == 0 {
			pickupSeen = dev.Now()
		}
		status := "on shelf"
		if dev.Now() > pickupAt {
			status = "PICKED UP"
		}
		mode := "selective"
		if rep.FellBack {
			mode = "read-all "
		}
		fmt.Printf("t=%5.1fs [%s] item-0001 %-9s targeted=%-5v pinned-targeted=%-5v precious IRR %.1f Hz\n",
			dev.Now().Seconds(), mode, status, pickedTargeted, preciousTargeted,
			tw.History().IRR(precious))
	}
	if pickupSeen > 0 {
		fmt.Printf("\npick-up at t=%.0fs detected and scheduled by t=%.1fs (%.1f s latency)\n",
			pickupAt.Seconds(), pickupSeen.Seconds(), (pickupSeen - pickupAt).Seconds())
	} else {
		fmt.Println("\npick-up was not detected — unexpected")
	}
}
