// Provision: commissioning station. Blank tags pass a station antenna;
// an LLRP AccessSpec bound to the inventory writes a facility word and a
// sequence number into each tag's User memory and reads back its TID —
// all in one singulation, with the results riding in the tag reports.
//
//	go run ./examples/provision
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"tagwatch/internal/epc"
	"tagwatch/internal/llrp"
	"tagwatch/internal/reader"
	"tagwatch/internal/rf"
	"tagwatch/internal/scene"
)

const facilityWord = 0xFA01 // facility 0xFA, line 01

func main() {
	// Six blank tags on the commissioning tray.
	rng := rand.New(rand.NewSource(33))
	scn := scene.New(rf.NewChannel(rf.DefaultParams(), rng), rng)
	scn.AddAntenna(rf.Pt(0, 0, 1))
	tags, err := epc.SGTINPopulation(703710, 500123, 5, 9000, 6)
	if err != nil {
		log.Fatal(err)
	}
	for i, c := range tags {
		scn.AddTag(c, scene.Stationary{P: rf.Pt(0.2+float64(i)*0.15, 0.3, 0.2)})
	}

	srv := llrp.NewServer(reader.New(reader.DefaultConfig(), scn), llrp.ServerConfig{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	conn, err := llrp.Dial(ctx, addr.String())
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()

	caps, err := conn.GetCapabilities(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("provision: reader model %d, %d antenna(s), phase reporting %v\n",
		caps.Model, caps.MaxAntennas, caps.SupportsPhaseReporting)

	// The commissioning AccessSpec: read 2 TID words, write the facility
	// word into User[0].
	access := llrp.AccessSpec{
		ID: 1,
		Ops: []llrp.OpSpec{
			{OpSpecID: 1, Bank: epc.BankTID, WordPtr: 0, WordCount: 2},
			{OpSpecID: 2, Write: true, Bank: epc.BankUser, WordPtr: 0, Data: []uint16{facilityWord}},
		},
	}
	if err := conn.AddAccessSpec(ctx, access); err != nil {
		log.Fatal(err)
	}
	if err := conn.EnableAccessSpec(ctx, 1); err != nil {
		log.Fatal(err)
	}

	// One short inventory pass commissions the tray.
	spec := llrp.ROSpec{
		ID:       1,
		Boundary: llrp.ROBoundarySpec{StopTrigger: llrp.StopTriggerDuration, DurationMS: 300},
		AISpecs: []llrp.AISpec{{
			AntennaIDs:  []uint16{1},
			StopTrigger: llrp.AISpecStopTrigger{Type: llrp.AIStopDuration, DurationMS: 300},
			Inventories: []llrp.InventoryParameterSpec{{ID: 1, Commands: []llrp.C1G2InventoryCommand{{Session: 1, InitialQ: 3}}}},
		}},
	}
	if err := conn.AddROSpec(ctx, spec); err != nil {
		log.Fatal(err)
	}
	// tagwatchvet(deverr): a dropped enable/start error here used to make
	// the example hang forever waiting for reports that never come.
	if err := conn.EnableROSpec(ctx, 1); err != nil {
		log.Fatal(err)
	}
	if err := conn.StartROSpec(ctx, 1); err != nil {
		log.Fatal(err)
	}

	provisioned := map[string]bool{}
	deadline := time.After(5 * time.Second)
	for len(provisioned) < len(tags) {
		select {
		case batch, ok := <-conn.Reports():
			if !ok {
				log.Fatal("connection died")
			}
			for _, r := range batch {
				if provisioned[r.EPC.String()] || len(r.OpResults) == 0 {
					continue
				}
				var tid string
				wrote := false
				for _, op := range r.OpResults {
					switch op.OpSpecID {
					case 1:
						if op.OK() {
							tid = fmt.Sprintf("%04X%04X…", op.Data[0], op.Data[1])
						}
					case 2:
						wrote = op.OK()
					}
				}
				if wrote {
					provisioned[r.EPC.String()] = true
					s, _ := epc.DecodeSGTIN(r.EPC)
					fmt.Printf("  commissioned %s (serial %d, TID %s) ← User[0]=%#04x\n",
						r.EPC, s.Serial, tid, facilityWord)
				}
			}
		case <-deadline:
			log.Fatalf("only %d of %d tags commissioned", len(provisioned), len(tags))
		}
	}
	fmt.Printf("provision: all %d tags commissioned\n", len(tags))
}
