// Quickstart: build a simulated scene with two moving tags among thirty
// stationary ones, run the Tagwatch middleware over it, and watch the
// movers' reading rates multiply.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"
	"time"

	"tagwatch/internal/core"
	"tagwatch/internal/epc"
	"tagwatch/internal/reader"
	"tagwatch/internal/rf"
	"tagwatch/internal/scene"
)

func main() {
	// 1. A world: one reader antenna, 30 parked tags, 2 on a turntable.
	rng := rand.New(rand.NewSource(7))
	scn := scene.New(rf.NewChannel(rf.DefaultParams(), rng), rng)
	scn.AddAntenna(rf.Pt(0, 0, 2))
	codes, err := epc.RandomPopulation(rng, 32, 96)
	if err != nil {
		panic(err)
	}
	movers := codes[:2]
	for i, c := range movers {
		scn.AddTag(c, scene.Circle{Center: rf.Pt(1.5, 1.5, 0), Radius: 0.2, Speed: 0.7, StartAngle: float64(i)})
	}
	for i, c := range codes[2:] {
		scn.AddTag(c, scene.Stationary{P: rf.Pt(0.4+float64(i%8)*0.3, 0.4+float64(i/8)*0.3, 0)})
	}

	// 2. A reader over the world, and Tagwatch over the reader.
	dev := core.NewSimDevice(reader.New(reader.DefaultConfig(), scn))
	cfg := core.DefaultConfig()
	cfg.PhaseIIDwell = 2 * time.Second
	cfg.StickyFor = 5 * time.Second
	tw := core.New(cfg, dev)

	// 3. Applications subscribe to every reading from both phases.
	var delivered int
	tw.Subscribe(func(core.Reading) { delivered++ })

	// 4. Run reading cycles. The first few flood (everything looks mobile
	// on a cold start); then Phase II locks onto the real movers.
	isMover := map[epc.EPC]bool{movers[0]: true, movers[1]: true}
	for i := 0; i < 8; i++ {
		start := dev.Now()
		rep := tw.RunCycle()
		span := dev.Now() - start
		var moverReads, otherReads int
		for _, r := range append(rep.PhaseIReads, rep.PhaseIIReads...) {
			if isMover[r.EPC] {
				moverReads++
			} else {
				otherReads++
			}
		}
		mode := "selective"
		if rep.FellBack {
			mode = "fallback "
		}
		fmt.Printf("cycle %d [%s] mover IRR %5.1f Hz, stationary IRR %5.1f Hz, %d masks\n",
			i, mode,
			float64(moverReads)/span.Seconds()/2,
			float64(otherReads)/span.Seconds()/30,
			len(rep.Plan.Masks))
	}
	fmt.Printf("delivered %d readings to the application\n", delivered)
}
