// Conveyor: the TrackPoint sorting-gate scenario (§2.4) over a real LLRP
// connection. A reader emulator runs in-process behind TCP; parcels cross
// the gate on a conveyor while sorted parcels sit parked beside it, and
// Tagwatch keeps the crossing parcels' reading rates high.
//
//	go run ./examples/conveyor
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"tagwatch/internal/core"
	"tagwatch/internal/epc"
	"tagwatch/internal/llrp"
	"tagwatch/internal/reader"
	"tagwatch/internal/rf"
	"tagwatch/internal/scene"
)

func main() {
	// The gate: one antenna above the belt, 24 parked parcels beside it,
	// and a stream of parcels crossing at 1.5 m/s.
	rng := rand.New(rand.NewSource(11))
	scn := scene.New(rf.NewChannel(rf.DefaultParams(), rng), rng)
	scn.AddAntenna(rf.Pt(0, 0, 2.5))
	codes, err := epc.SequentialPopulation([]byte{0x30, 0x08, 0x33}, 1, 30, 96)
	if err != nil {
		log.Fatal(err)
	}
	crossing := codes[:6]
	for i, c := range crossing {
		// Parcels start crossing once the gate has warmed up (~15 s).
		depart := time.Duration(16+5*i) * time.Second
		scn.AddTag(c, scene.Line{
			Start:  rf.Pt(-3, 0.5, 0.8),
			Dir:    rf.Pt(1, 0, 0),
			Speed:  1.5,
			Depart: depart,
			Arrive: depart + 4*time.Second,
		})
	}
	for i, c := range codes[6:] {
		scn.AddTag(c, scene.Stationary{P: rf.Pt(-1.5+float64(i%8)*0.4, -1.2-float64(i/8)*0.4, 0.4)})
	}

	// The reader emulator behind real TCP.
	eng := reader.New(reader.DefaultConfig(), scn)
	srv := llrp.NewServer(eng, llrp.ServerConfig{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	conn, err := llrp.Dial(ctx, addr.String())
	cancel()
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	fmt.Printf("conveyor gate: LLRP reader at %s, %d parked + %d crossing parcels\n",
		addr, len(codes)-len(crossing), len(crossing))

	cfg := core.DefaultConfig()
	cfg.PhaseIIDwell = 2 * time.Second
	tw := core.New(cfg, core.NewLLRPDevice(conn))

	isCrossing := map[epc.EPC]bool{}
	for _, c := range crossing {
		isCrossing[c] = true
	}
	for i := 0; i < 18; i++ {
		rep := tw.RunCycle()
		var onBelt []string
		for _, c := range rep.Targets {
			if isCrossing[c] {
				onBelt = append(onBelt, c.String()[18:])
			}
		}
		mode := "selective"
		if rep.FellBack {
			mode = "read-all"
		}
		fmt.Printf("cycle %2d [%9s] present=%2d targets=%2d crossing-targets=%v\n",
			i, mode, len(rep.Present), len(rep.Targets), onBelt)
	}

	// The history knows who got read how often — parked parcels no longer
	// drown the belt.
	var beltReads, parkedReads uint64
	for _, c := range codes {
		if isCrossing[c] {
			beltReads += tw.History().Total(c)
		} else {
			parkedReads += tw.History().Total(c)
		}
	}
	fmt.Printf("total: %d readings of 6 crossing parcels, %d of 24 parked\n", beltReads, parkedReads)
}
