// Tracking: the paper's Fig. 1 application end-to-end. A tagged toy train
// circles a track among four stationary tags; the Differential Augmented
// Hologram recovers its trajectory, first under plain reading-all, then
// with Tagwatch's rate-adaptive reading.
//
//	go run ./examples/tracking
package main

import (
	"fmt"
	"math/rand"
	"time"

	"tagwatch/internal/core"
	"tagwatch/internal/epc"
	"tagwatch/internal/gen2"
	"tagwatch/internal/reader"
	"tagwatch/internal/rf"
	"tagwatch/internal/scene"
	"tagwatch/internal/tracking"
)

// antennas is the (nominally) ±5 m gate around the track.
func antennas() []scene.Antenna {
	return []scene.Antenna{
		{ID: 1, Pos: rf.Pt(5.0, 4.3, 0)},
		{ID: 2, Pos: rf.Pt(-4.5, 5.2, 0)},
		{ID: 3, Pos: rf.Pt(-5.3, -4.1, 0)},
		{ID: 4, Pos: rf.Pt(4.2, -5.4, 0)},
	}
}

func buildScene(seed int64) (*scene.Scene, epc.EPC, scene.Trajectory) {
	rng := rand.New(rand.NewSource(seed))
	scn := scene.New(rf.NewChannel(rf.DefaultParams(), rng), rng)
	for _, a := range antennas() {
		scn.AddAntenna(a.Pos)
	}
	train := epc.MustParse("30f4ab12cd0045e100000101")
	track := scene.Circle{Center: rf.Pt(0, 0, 0), Radius: 0.2, Speed: 0.7}
	scn.AddTag(train, track)
	companions, _ := epc.SequentialPopulation([]byte{0x30, 0xAA}, 1, 4, 96)
	for i, c := range companions {
		scn.AddTag(c, scene.Stationary{P: rf.Pt(0.45*float64(1-2*(i&1)), 0.45*float64(1-(i&2)), 0)})
	}
	return scn, train, track
}

func recover(reads []core.Reading, train epc.EPC, track scene.Trajectory) (float64, int) {
	var obs []tracking.Observation
	for _, r := range reads {
		if r.EPC == train {
			obs = append(obs, tracking.Observation{Time: r.Time, Antenna: r.Antenna, Channel: r.Channel, Phase: r.PhaseRad})
		}
	}
	if len(obs) == 0 {
		return 0, 0
	}
	cfg := tracking.DefaultConfig()
	cfg.MaxSpeed = 1.5
	tr := tracking.New(cfg, rf.DefaultFrequencyPlan(), antennas())
	tr.SetInitial(track.Pos(obs[0].Time))
	ests := tr.Track(obs)
	return tracking.MeanError(ests, track) * 100, len(ests)
}

func gateConfig() reader.Config {
	cfg := reader.DefaultConfig()
	cfg.Timing = gen2.ImpinjDenseProfile()
	cfg.StartupCost = 9 * time.Millisecond
	return cfg
}

func main() {
	const dur = 25 * time.Second

	// Arm 1: plain reading-all.
	scn, train, track := buildScene(2)
	dev := core.NewSimDevice(reader.New(gateConfig(), scn))
	reads := dev.ReadAllFor(dur)
	errCM, n := recover(reads, train, track)
	fmt.Printf("reading-all:    %3d trajectory points, mean error %5.1f cm\n", n, errCM)

	// Arm 2: Tagwatch rate-adaptive reading on an identical rig.
	scn2, train2, track2 := buildScene(2)
	dev2 := core.NewSimDevice(reader.New(gateConfig(), scn2))
	cfg := core.DefaultConfig()
	cfg.PhaseIIDwell = 5 * time.Second
	cfg.MobileCutoff = 0.6 // 1 mover of 5 tags is past the default cutoff
	tw := core.New(cfg, dev2)
	for i := 0; i < 6; i++ {
		tw.RunCycle() // warm up the immobility models
	}
	var twReads []core.Reading
	start := dev2.Now()
	for dev2.Now()-start < dur {
		rep := tw.RunCycle()
		twReads = append(twReads, rep.PhaseIReads...)
		twReads = append(twReads, rep.PhaseIIReads...)
	}
	errCM2, n2 := recover(twReads, train2, track2)
	fmt.Printf("rate-adaptive:  %3d trajectory points, mean error %5.1f cm\n", n2, errCM2)
	if errCM2 < errCM {
		fmt.Printf("rate-adaptive reading recovered the trajectory %.1f× more accurately\n", errCM/errCM2)
	}
}
