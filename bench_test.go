package tagwatch_test

// One benchmark per figure of the paper's evaluation (the paper has no
// numbered tables). Each benchmark regenerates the figure's data at quick
// scale and reports the headline quantity via b.ReportMetric, so a bench
// run doubles as a regression check on the reproduced shapes:
//
//	go test -bench=. -benchmem
//
// cmd/experiments prints the full rows/series for each figure.

import (
	"testing"

	"tagwatch/internal/experiments"
)

func benchOpts(i int) experiments.Options {
	return experiments.Options{Seed: int64(1 + i), Quick: true}
}

// BenchmarkFig01Tracking regenerates the tracking study: trajectory error
// with 0/2/4 stationary companions and with rate-adaptive reading.
func BenchmarkFig01Tracking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig01(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		last := r.Cases[len(r.Cases)-1]
		b.ReportMetric(last.MeanErrorCM, "tagwatch-err-cm")
		b.ReportMetric(r.Cases[2].MeanErrorCM, "readall-1+4-err-cm")
	}
}

// BenchmarkFig02IRR regenerates the reading-rate study and cost-model fit.
func BenchmarkFig02IRR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig02(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.DropFrac, "irr-drop-pct")
		b.ReportMetric(float64(r.FitTau0.Microseconds())/1000, "tau0-ms")
	}
}

// BenchmarkFig03Trace regenerates the sorting-facility trace (Fig 3).
func BenchmarkFig03Trace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig03(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Trace.Total), "readings")
		b.ReportMetric(float64(r.HeroReads), "hero-reads")
	}
}

// BenchmarkFig04TraceCDF regenerates the reading-count distribution
// quantiles (Fig 4; same workload as Fig 3).
func BenchmarkFig04TraceCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig03(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Over205, "frac-over-205")
		b.ReportMetric(r.Over655, "frac-over-655")
	}
}

// BenchmarkFig08GMM regenerates the multi-modal phase histogram and the
// learned immobility modes.
func BenchmarkFig08GMM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig08(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.StrongModes), "strong-modes")
	}
}

// BenchmarkFig12ROC regenerates the four-detector ROC comparison.
func BenchmarkFig12ROC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig12(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Curves[0].AUC, "phase-mog-auc")
		b.ReportMetric(r.CycleTPRAtFPR1, "cycle-tpr@fpr0.1")
	}
}

// BenchmarkFig13Sensitivity regenerates the displacement-sensitivity
// curves.
func BenchmarkFig13Sensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig13(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows[1].PhaseRate, "phase@2cm")
		b.ReportMetric(r.Rows[1].RSSRate, "rss@2cm")
	}
}

// BenchmarkFig14Learning regenerates the learning curve.
func BenchmarkFig14Learning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig14(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		var at67 float64
		for _, row := range r.Rows {
			if row.TrainMS == 1490 {
				at67 = row.Accuracy
			}
		}
		b.ReportMetric(at67, "accuracy@67reads")
	}
}

// BenchmarkFig15Feasibility2 regenerates the 2-of-40 schedule-feasibility
// study.
func BenchmarkFig15Feasibility2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig15(benchOpts(i), 2)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.MeanTargetTW/r.MeanTargetAll, "tagwatch-gain")
		b.ReportMetric(r.MeanTargetNV/r.MeanTargetAll, "naive-gain")
	}
}

// BenchmarkFig16Feasibility5 regenerates the 5-of-40 variant.
func BenchmarkFig16Feasibility5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig15(benchOpts(i), 5)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.MeanTargetTW/r.MeanTargetAll, "tagwatch-gain")
		b.ReportMetric(r.MeanTargetNV/r.MeanTargetAll, "naive-gain")
	}
}

// BenchmarkFig17ScheduleCost regenerates the schedule-cost CDF.
func BenchmarkFig17ScheduleCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig17(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.P50.Microseconds())/1000, "p50-ms")
		b.ReportMetric(float64(r.P90.Microseconds())/1000, "p90-ms")
	}
}

// BenchmarkFig18IRRGain regenerates the headline IRR-gain sweep.
func BenchmarkFig18IRRGain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig18(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows[0].TagwatchP50, "gain@5pct")
		b.ReportMetric(r.Rows[1].TagwatchP50, "gain@10pct")
	}
}

// BenchmarkFitCostModel regenerates the §2.3 least-squares calibration of
// τ₀ and τ̄ (reported by Fig 2's machinery).
func BenchmarkFitCostModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig02(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.FitTau0.Microseconds())/1000, "tau0-ms")
		b.ReportMetric(float64(r.FitTauBar.Microseconds())/1000, "taubar-ms")
	}
}
